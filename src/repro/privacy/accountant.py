"""Moments accountant for the subsampled Gaussian mechanism.

The paper computes its privacy spending (Table VI) with the moments
accountant of Abadi et al. (their Definition 5), via TensorFlow Privacy's
``compute_dp_sgd_privacy``.  That implementation tracks Renyi differential
privacy (RDP) of the *subsampled Gaussian mechanism* at a set of orders and
converts the composed RDP guarantee to an ``(epsilon, delta)`` statement.  We
re-implement the same accountant from scratch here:

* :func:`compute_rdp_subsampled_gaussian` — RDP at integer orders ``alpha``
  of one step of the Poisson-subsampled Gaussian mechanism with sampling rate
  ``q`` and noise multiplier ``sigma``, using the binomial-expansion upper
  bound of Mironov et al. / Abadi et al.;
* :func:`rdp_to_epsilon` — conversion of composed RDP to ``(epsilon, delta)``;
* :class:`MomentsAccountant` — stateful accumulation over training steps, the
  object the federated trainers use;
* :func:`compute_dp_sgd_epsilon` — the one-shot convenience mirroring
  TF-Privacy's ``compute_dp_sgd_privacy(N, batch, noise, epochs, delta)``
  interface in terms of ``(q, sigma, steps, delta)``;
* :func:`abadi_asymptotic_epsilon` — the closed-form bound
  ``epsilon = c2 * q * sqrt(T log(1/delta)) / sigma`` quoted as Equation (2)
  in the paper, kept for cross-checking the scaling behaviour.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np
from scipy import special

__all__ = [
    "DEFAULT_RDP_ORDERS",
    "compute_rdp_subsampled_gaussian",
    "rdp_to_epsilon",
    "compute_dp_sgd_epsilon",
    "abadi_asymptotic_epsilon",
    "MomentsAccountant",
]


#: Default Renyi orders, matching the grid used by TF-Privacy.
DEFAULT_RDP_ORDERS: Tuple[float, ...] = tuple(range(2, 64)) + (128.0, 256.0, 512.0)


def _log_add(a: float, b: float) -> float:
    """Numerically stable ``log(exp(a) + exp(b))``."""
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    return max(a, b) + math.log1p(math.exp(-abs(a - b)))


def _rdp_gaussian(sigma: float, alpha: float) -> float:
    """RDP of the (un-subsampled) Gaussian mechanism: ``alpha / (2 sigma^2)``."""
    return alpha / (2.0 * sigma * sigma)


def _rdp_subsampled_gaussian_int(q: float, sigma: float, alpha: int) -> float:
    """RDP upper bound at an integer order for the subsampled Gaussian mechanism.

    Uses the binomial expansion

    ``A(alpha) = sum_{j=0}^{alpha} C(alpha, j) (1-q)^{alpha-j} q^j exp(j(j-1)/(2 sigma^2))``

    and returns ``log(A) / (alpha - 1)``.
    """
    log_a = -math.inf
    for j in range(alpha + 1):
        log_coef = (
            float(special.gammaln(alpha + 1) - special.gammaln(j + 1) - special.gammaln(alpha - j + 1))
            + j * math.log(q)
            + (alpha - j) * math.log1p(-q)
        )
        log_term = log_coef + (j * j - j) / (2.0 * sigma * sigma)
        log_a = _log_add(log_a, log_term)
    return log_a / (alpha - 1)


def compute_rdp_subsampled_gaussian(
    q: float, sigma: float, orders: Sequence[float] = DEFAULT_RDP_ORDERS
) -> np.ndarray:
    """Per-step RDP of the subsampled Gaussian mechanism at each order.

    Parameters
    ----------
    q:
        Sampling rate (probability that a given example participates in the
        step); ``q = 1`` reduces to the plain Gaussian mechanism.
    sigma:
        Noise multiplier (noise stddev divided by the L2 sensitivity).
    orders:
        Renyi orders; non-integer orders are handled by rounding up to the
        next integer, which only loosens (never understates) the guarantee.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"sampling rate q must lie in (0, 1], got {q}")
    if sigma <= 0.0:
        raise ValueError(f"noise multiplier sigma must be positive, got {sigma}")
    values: List[float] = []
    for alpha in orders:
        if alpha <= 1:
            raise ValueError(f"RDP orders must exceed 1, got {alpha}")
        if q == 1.0:
            values.append(_rdp_gaussian(sigma, float(alpha)))
            continue
        alpha_int = int(math.ceil(alpha))
        values.append(_rdp_subsampled_gaussian_int(q, sigma, alpha_int))
    return np.asarray(values, dtype=np.float64)


def rdp_to_epsilon(
    orders: Sequence[float], rdp: Sequence[float], delta: float
) -> Tuple[float, float]:
    """Convert a composed RDP curve to an ``(epsilon, delta)`` guarantee.

    Returns ``(epsilon, best_order)`` where ``epsilon`` is minimised over the
    orders via ``epsilon = rdp(alpha) + log(1/delta) / (alpha - 1)``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    orders = np.asarray(orders, dtype=np.float64)
    rdp = np.asarray(rdp, dtype=np.float64)
    if orders.shape != rdp.shape:
        raise ValueError("orders and rdp must have the same length")
    candidates = rdp + math.log(1.0 / delta) / (orders - 1.0)
    index = int(np.argmin(candidates))
    return float(max(candidates[index], 0.0)), float(orders[index])


def compute_dp_sgd_epsilon(
    sampling_rate: float,
    noise_multiplier: float,
    steps: int,
    delta: float,
    orders: Sequence[float] = DEFAULT_RDP_ORDERS,
) -> float:
    """Epsilon spent after ``steps`` subsampled-Gaussian steps (moments accountant).

    This mirrors the interface the paper uses ("privacy spending epsilon is
    computed when T, sigma, delta, and q are given").
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if steps == 0:
        return 0.0
    rdp = compute_rdp_subsampled_gaussian(sampling_rate, noise_multiplier, orders) * steps
    epsilon, _ = rdp_to_epsilon(orders, rdp, delta)
    return epsilon


def abadi_asymptotic_epsilon(
    sampling_rate: float,
    noise_multiplier: float,
    steps: int,
    delta: float,
    c2: float = 1.0,
) -> float:
    """Closed-form bound of Equation (2): ``c2 q sqrt(T log(1/delta)) / sigma``."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling rate must lie in (0, 1]")
    if noise_multiplier <= 0:
        raise ValueError("noise multiplier must be positive")
    return c2 * sampling_rate * math.sqrt(steps * math.log(1.0 / delta)) / noise_multiplier


class MomentsAccountant:
    """Stateful moments accountant accumulating RDP over heterogeneous steps.

    The federated trainers call :meth:`accumulate` once per noise-injection
    step (per round for Fed-SDP, per local iteration for Fed-CDP); epsilon for
    a target delta is available at any time via :meth:`get_epsilon`.

    The accountant also enforces the paper's validity condition for the
    moments-accountant bound, ``q < 1 / (16 sigma)``, emitting the check via
    :meth:`check_sampling_condition`.

    As the default entry of the accountant registry
    (:data:`repro.privacy.ledger.ACCOUNTANTS`) it additionally implements the
    pluggable round-charging interface: :meth:`bind_context` attaches the
    equal-shard sampling rates of a run, after which :meth:`charge_round`
    accepts a declarative :class:`~repro.privacy.ledger.RoundCharge` (the
    participant list is ignored — this is the paper's equal-shard model,
    which charges the full population rate whenever anything was released).
    """

    name = "moments"

    def __init__(self, orders: Sequence[float] = DEFAULT_RDP_ORDERS) -> None:
        self.orders = tuple(float(order) for order in orders)
        self._rdp = np.zeros(len(self.orders), dtype=np.float64)
        self._steps = 0
        #: equal-shard rates of the bound run (an ``AccountingContext``); the
        #: accountant stays usable standalone via :meth:`accumulate` without it
        self._context = None

    @property
    def steps(self) -> int:
        """Number of accumulated mechanism invocations."""
        return self._steps

    def accumulate(self, sampling_rate: float, noise_multiplier: float, steps: int = 1) -> None:
        """Add ``steps`` invocations of the subsampled Gaussian mechanism."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if steps == 0:
            return
        self._rdp = self._rdp + steps * compute_rdp_subsampled_gaussian(
            sampling_rate, noise_multiplier, self.orders
        )
        self._steps += steps

    def get_epsilon(self, delta: float) -> float:
        """Current epsilon for the requested delta (0 if nothing accumulated)."""
        if self._steps == 0:
            return 0.0
        epsilon, _ = rdp_to_epsilon(self.orders, self._rdp, delta)
        return epsilon

    def get_epsilon_and_order(self, delta: float) -> Tuple[float, float]:
        """Current epsilon along with the optimal Renyi order."""
        if self._steps == 0:
            return 0.0, float(self.orders[0])
        return rdp_to_epsilon(self.orders, self._rdp, delta)

    # ------------------------------------------------------------------
    # Pluggable-accountant interface (see repro.privacy.ledger)
    # ------------------------------------------------------------------
    def bind_context(self, context) -> None:
        """Attach a run's :class:`~repro.privacy.ledger.AccountingContext`."""
        self._context = context

    def _rate_for_level(self, level: str) -> float:
        if self._context is None:
            raise RuntimeError(
                "MomentsAccountant is unbound; call bind_context(...) before "
                "charge_round (the simulation does this at construction)"
            )
        return self._context.rate_for_level(level)

    def charge_round(self, charge, participants: Sequence[int]) -> None:
        """Charge one round at the equal-shard rate for the charge's level.

        ``participants`` is accepted for interface compatibility and ignored:
        the paper's model charges the population-level rate whenever a round
        released anything (the caller never charges skipped rounds).
        """
        del participants
        self.accumulate(
            sampling_rate=self._rate_for_level(charge.level),
            noise_multiplier=charge.noise_multiplier,
            steps=charge.steps,
        )

    def projected_epsilon(self, charge, delta: float) -> float:
        """Epsilon *if* one more round like ``charge`` were accumulated.

        Used for budget-driven early stopping: the release is withheld when
        the projection exceeds the budget.
        """
        rdp = self._rdp + charge.steps * compute_rdp_subsampled_gaussian(
            self._rate_for_level(charge.level), charge.noise_multiplier, self.orders
        )
        epsilon, _ = rdp_to_epsilon(self.orders, rdp, delta)
        return epsilon

    @staticmethod
    def check_sampling_condition(sampling_rate: float, noise_multiplier: float) -> bool:
        """The paper's applicability condition ``q < 1 / (16 sigma)`` (Definition 5)."""
        if noise_multiplier <= 0:
            raise ValueError("noise multiplier must be positive")
        return sampling_rate < 1.0 / (16.0 * noise_multiplier)

    def reset(self) -> None:
        """Forget all accumulated privacy spending."""
        self._rdp = np.zeros(len(self.orders), dtype=np.float64)
        self._steps = 0

    # ------------------------------------------------------------------
    # Serialization (simulation checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the accumulated RDP state."""
        return {
            "orders": list(self.orders),
            "rdp": self._rdp.tolist(),
            "steps": self._steps,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        orders = tuple(float(order) for order in state["orders"])
        rdp = np.asarray(state["rdp"], dtype=np.float64)
        if rdp.shape != (len(orders),):
            raise ValueError("rdp vector length does not match the order grid")
        self.orders = orders
        self._rdp = rdp
        self._steps = int(state["steps"])
