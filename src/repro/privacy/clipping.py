"""Gradient clipping: the L2 projection and the clipping-bound schedules.

Two kinds of objects live here:

* the clipping *operation* — :func:`clip_by_l2_norm` and
  :func:`clip_gradients_per_layer`, implementing lines 9-12 of Algorithm 2 and
  lines 7-11 of Algorithm 1 (each layer's gradient block is clipped to L2 norm
  at most ``C``);
* clipping-bound *policies* — how ``C`` evolves over the federated rounds.
  :class:`ConstantClipping` is the conventional choice (``C = 4`` by default,
  following Abadi et al.), :class:`LinearDecayClipping` implements the paper's
  Fed-CDP(decay) schedule (linearly decaying ``C`` from 6 to 2 over the
  training rounds, Section VI), and :class:`MedianNormClipping` implements the
  median-of-norms heuristic discussed in Section IV-C.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "l2_norm",
    "global_l2_norm",
    "clip_by_l2_norm",
    "clip_gradients_per_layer",
    "per_example_layer_norms",
    "per_example_global_norms",
    "clip_per_example_stack",
    "ClippingPolicy",
    "ConstantClipping",
    "LinearDecayClipping",
    "ExponentialDecayClipping",
    "MedianNormClipping",
]


def l2_norm(value: np.ndarray) -> float:
    """Flat L2 norm of an array."""
    return float(np.linalg.norm(np.asarray(value, dtype=np.float64).reshape(-1)))


def global_l2_norm(values: Sequence[np.ndarray]) -> float:
    """L2 norm of the concatenation of several arrays.

    Uses flat dot products (``np.vdot``) per block, which avoids the
    temporary allocated by ``np.square`` on every call in the training loop.
    """
    return float(np.sqrt(sum(float(np.vdot(v, v)) for v in values)))


def clip_by_l2_norm(value: np.ndarray, bound: float) -> np.ndarray:
    """Scale ``value`` so its L2 norm is at most ``bound`` (Algorithm 2, line 10).

    Implements ``value / max(1, ||value||_2 / C)``: values inside the ball are
    untouched, larger ones are radially projected onto the ball.
    """
    if bound <= 0:
        raise ValueError(f"clipping bound must be positive, got {bound}")
    value = np.asarray(value, dtype=np.float64)
    norm = l2_norm(value)
    scale = max(1.0, norm / bound)
    return value / scale


def clip_gradients_per_layer(gradients: Sequence[np.ndarray], bound: float) -> List[np.ndarray]:
    """Clip each layer's gradient block independently to L2 norm ``bound``.

    The paper clips layer by layer ("a M layer neural network will have M L2
    norms, one for each layer") for both Fed-SDP and Fed-CDP.
    """
    return [clip_by_l2_norm(gradient, bound) for gradient in gradients]


# ----------------------------------------------------------------------
# Vectorized forms operating on a stacked per-example representation:
# one ``(B, *param_shape)`` array per layer, as produced by
# :func:`repro.nn.perexample.per_example_gradients`.
# ----------------------------------------------------------------------
def per_example_layer_norms(stack: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Per-example L2 norm of each layer block: a ``(B,)`` array per layer.

    One einsum contraction per layer replaces the ``B * num_layers`` Python
    ``np.linalg.norm`` calls of the looped path.
    """
    norms: List[np.ndarray] = []
    for layer in stack:
        flat = np.asarray(layer, dtype=np.float64).reshape(layer.shape[0], -1)
        norms.append(np.sqrt(np.einsum("bi,bi->b", flat, flat)))
    return norms


def per_example_global_norms(
    stack: Optional[Sequence[np.ndarray]] = None,
    layer_norms: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Per-example L2 norm over the concatenation of all layers: shape ``(B,)``.

    Pass ``layer_norms`` (from :func:`per_example_layer_norms` or
    :func:`clip_per_example_stack`) to reuse norms the clipping step already
    computed instead of touching the gradient stack again.
    """
    if layer_norms is None:
        if stack is None:
            raise ValueError("provide either a gradient stack or precomputed layer norms")
        layer_norms = per_example_layer_norms(stack)
    squared = np.zeros_like(np.asarray(layer_norms[0], dtype=np.float64))
    for norms in layer_norms:
        squared = squared + np.square(norms)
    return np.sqrt(squared)


def clip_per_example_stack(
    stack: Sequence[np.ndarray], bound: float
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Clip every example's layer blocks to L2 norm ``bound`` in one pass.

    Vectorized form of applying :func:`clip_gradients_per_layer` to each
    example of the stack: all ``B`` scale factors of a layer are computed from
    one einsum and applied with one broadcasted multiply.

    Returns ``(clipped_stack, pre_clip_layer_norms)`` so callers (Fed-CDP's
    Figure-3 norm telemetry, :class:`MedianNormClipping`) can reuse the norms
    without recomputing them.
    """
    if bound <= 0:
        raise ValueError(f"clipping bound must be positive, got {bound}")
    layer_norms = per_example_layer_norms(stack)
    clipped: List[np.ndarray] = []
    for layer, norms in zip(stack, layer_norms):
        scale = np.maximum(1.0, norms / bound)
        shape = (layer.shape[0],) + (1,) * (np.asarray(layer).ndim - 1)
        clipped.append(np.asarray(layer, dtype=np.float64) / scale.reshape(shape))
    return clipped, layer_norms


class ClippingPolicy:
    """Schedule of the clipping bound ``C`` over federated rounds."""

    def bound_for_round(self, round_index: int) -> float:  # pragma: no cover - abstract
        """Clipping bound to use at federated round ``round_index`` (0-based)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description for experiment logs."""
        return type(self).__name__


class ConstantClipping(ClippingPolicy):
    """Fixed clipping bound (the paper's default, ``C = 4``)."""

    def __init__(self, bound: float = 4.0) -> None:
        if bound <= 0:
            raise ValueError(f"clipping bound must be positive, got {bound}")
        self.bound = float(bound)

    def bound_for_round(self, round_index: int) -> float:
        return self.bound

    def describe(self) -> str:
        return f"constant(C={self.bound:g})"


class LinearDecayClipping(ClippingPolicy):
    """Linearly decaying clipping bound, the Fed-CDP(decay) schedule.

    The paper "linearly decay[s] the clipping bound from C=6 to C=2 in 100
    rounds"; the start/end bounds and horizon are configurable.
    """

    def __init__(self, start: float = 6.0, end: float = 2.0, total_rounds: int = 100) -> None:
        if start <= 0 or end <= 0:
            raise ValueError("clipping bounds must be positive")
        if total_rounds <= 0:
            raise ValueError("total_rounds must be positive")
        self.start = float(start)
        self.end = float(end)
        self.total_rounds = int(total_rounds)

    def bound_for_round(self, round_index: int) -> float:
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        progress = min(round_index, self.total_rounds - 1) / max(self.total_rounds - 1, 1)
        return self.start + (self.end - self.start) * progress

    def describe(self) -> str:
        return f"linear_decay(C={self.start:g}->{self.end:g} over {self.total_rounds} rounds)"


class ExponentialDecayClipping(ClippingPolicy):
    """Exponentially decaying clipping bound (ablation alternative to linear decay)."""

    def __init__(self, start: float = 6.0, decay_rate: float = 0.99, minimum: float = 1.0) -> None:
        if start <= 0 or minimum <= 0:
            raise ValueError("clipping bounds must be positive")
        if not 0.0 < decay_rate <= 1.0:
            raise ValueError("decay_rate must lie in (0, 1]")
        self.start = float(start)
        self.decay_rate = float(decay_rate)
        self.minimum = float(minimum)

    def bound_for_round(self, round_index: int) -> float:
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return max(self.minimum, self.start * (self.decay_rate ** round_index))

    def describe(self) -> str:
        return f"exp_decay(C0={self.start:g}, rate={self.decay_rate:g}, min={self.minimum:g})"


class MedianNormClipping(ClippingPolicy):
    """Adaptive bound set to the running median of observed gradient norms.

    Section IV-C notes that instead of a preset constant one "can use the
    median norm of all original updates ... as the clipping bound".  Observed
    norms are fed in via :meth:`observe`; until any are seen, a fallback bound
    is used.
    """

    def __init__(self, fallback: float = 4.0, window: int = 1000) -> None:
        if fallback <= 0:
            raise ValueError("fallback bound must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.fallback = float(fallback)
        self.window = int(window)
        self._norms: List[float] = []

    def observe(self, norm: float) -> None:
        """Record an observed (pre-clipping) gradient L2 norm."""
        if norm < 0:
            raise ValueError("norms are non-negative")
        self._norms.append(float(norm))
        if len(self._norms) > self.window:
            self._norms = self._norms[-self.window :]

    def observe_gradients(self, gradients: Sequence[np.ndarray]) -> None:
        """Record the layer-wise norms of a gradient list."""
        for gradient in gradients:
            self.observe(l2_norm(gradient))

    def bound_for_round(self, round_index: int) -> float:
        if not self._norms:
            return self.fallback
        return float(np.median(self._norms))

    def describe(self) -> str:
        return f"median_norm(fallback={self.fallback:g}, window={self.window})"
