"""Pluggable privacy accounting: round charges, registry, per-client ledger.

The paper (and :class:`~repro.privacy.accountant.MomentsAccountant`) models
DP-SGD's subsampling with one *global* rate ``q = B*Kt/N`` — exact when every
client holds an equal shard.  The scenario engine's heterogeneous partitions
(``dirichlet``, ``quantity_skew``) break that assumption: an example on a
small shard of size ``n_k`` enters its client's batches with probability
``B/n_k >> B*K/N`` whenever that client trains, so the equal-shard figure
understates the worst-case instance-level epsilon.  This module makes the
accountant a pluggable subsystem so the simulation can track that honestly:

* :class:`RoundCharge` — a trainer's declarative description of what one
  federated round releases (level, noise multiplier, mechanism invocations);
* :class:`AccountingContext` — the realised run facts every accountant may
  bind to (shard sizes, batch size, the equal-shard rates);
* :class:`HeterogeneousAccountant` — a per-client RDP *ledger* charging
  ``q_k = B * 1[k participated] / n_k`` per local iteration, reporting the
  worst-case instance-level epsilon and the full per-client distribution,
  with an embedded equal-shard :class:`MomentsAccountant` for side-by-side
  comparison;
* :data:`ACCOUNTANTS` / :func:`make_accountant` — the registry the
  simulation resolves ``FederatedConfig.accountant`` through.

Ledger semantics (documented in full in ``docs/privacy_accounting.md``):

* Only clients that actually participated in a round are charged, at the
  *conditional* rate ``B/n_k`` — the ledger conditions on the realised
  participation record instead of claiming amplification by client sampling.
  Consequently it coincides with the equal-shard moments accountant exactly
  when shards are equal and every client participates every round (no client
  sampling to amplify by), and upper-bounds it otherwise.
* Each participation charges the client's *realised* local iteration count
  ``max(1, min(L, ceil(n_k / B)))``, mirroring
  :meth:`repro.core.base.LocalTrainerBase._local_iterations`.
* Client-level charges (Fed-SDP) are recorded at ``q = 1`` for participants:
  conditioned on participating, the client's update is released under the
  plain Gaussian mechanism.
* Zero-participation rounds charge nobody (nothing was released).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .accountant import (
    DEFAULT_RDP_ORDERS,
    MomentsAccountant,
    compute_rdp_subsampled_gaussian,
)

__all__ = [
    "CHARGE_LEVELS",
    "ACCOUNTANT_NAMES",
    "ACCOUNTANTS",
    "RoundCharge",
    "AccountingContext",
    "HeterogeneousAccountant",
    "make_accountant",
]


#: Units of privacy a round charge may be expressed in.
CHARGE_LEVELS: Tuple[str, ...] = ("instance", "client")


@dataclass(frozen=True)
class RoundCharge:
    """What one federated round releases, as declared by the local trainer.

    ``level`` names the privacy unit: ``"instance"`` for per-example
    mechanisms (Fed-CDP), ``"client"`` for per-update mechanisms (Fed-SDP).
    ``steps`` counts subsampled-Gaussian invocations per participating round
    (``L`` local iterations for Fed-CDP, one shared update for Fed-SDP).
    """

    level: str
    noise_multiplier: float
    steps: int

    def __post_init__(self) -> None:
        if self.level not in CHARGE_LEVELS:
            raise ValueError(f"unknown charge level {self.level!r}; expected one of {CHARGE_LEVELS}")
        if self.noise_multiplier <= 0:
            raise ValueError("noise_multiplier must be positive")
        if self.steps <= 0:
            raise ValueError("steps must be positive")


@dataclass(frozen=True)
class AccountingContext:
    """Realised facts of one run that accountants bind to.

    The equal-shard rates are passed through from the config (rather than
    re-derived) so the default accountant reproduces the paper's numbers
    bit-for-bit; ``shard_sizes`` is the realised partition the heterogeneous
    ledger keys its per-client rates on.
    """

    #: realised per-client shard sizes ``n_k`` (indexed by client id)
    shard_sizes: Tuple[int, ...]
    #: local batch size ``B``
    batch_size: int
    #: the paper's equal-shard instance rate ``q = B * Kt / N``
    instance_sampling_rate: float
    #: the client-level rate ``q2 = Kt / K``
    client_sampling_rate: float

    def __post_init__(self) -> None:
        if not self.shard_sizes or any(size <= 0 for size in self.shard_sizes):
            raise ValueError("shard_sizes must be non-empty and positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    @classmethod
    def from_config(cls, config, shard_sizes: Sequence[int]) -> "AccountingContext":
        """Build the context from a :class:`~repro.federated.config.FederatedConfig`."""
        return cls(
            shard_sizes=tuple(int(size) for size in shard_sizes),
            batch_size=config.effective_batch_size,
            instance_sampling_rate=config.instance_sampling_rate,
            client_sampling_rate=config.client_sampling_rate,
        )

    def rate_for_level(self, level: str) -> float:
        """The equal-shard sampling rate the moments accountant uses for ``level``."""
        if level == "instance":
            return self.instance_sampling_rate
        if level == "client":
            return self.client_sampling_rate
        raise ValueError(f"unknown charge level {level!r}; expected one of {CHARGE_LEVELS}")


class HeterogeneousAccountant:
    """Per-client RDP ledger for heterogeneous shards and realised participation.

    One RDP curve is maintained *per client*.  A round charges only the
    clients that actually participated: client ``k`` accrues
    ``steps_k * RDP(q_k, sigma)`` with ``q_k = min(1, B / n_k)`` at the
    instance level (``q_k = 1`` at the client level) and
    ``steps_k = max(1, min(steps, ceil(n_k / B)))`` mirroring the trainer's
    realised local iteration count.  :meth:`get_epsilon` reports the
    worst-case (maximum) per-client epsilon — the honest instance-level
    guarantee for examples on the smallest shard — and
    :meth:`epsilon_per_client` the full distribution.  An embedded
    equal-shard :class:`MomentsAccountant` is charged in parallel so the
    paper's figure stays available side by side
    (:meth:`equal_shard_epsilon`).
    """

    name = "heterogeneous"

    def __init__(self, orders: Sequence[float] = DEFAULT_RDP_ORDERS) -> None:
        self.orders = tuple(float(order) for order in orders)
        self._context: Optional[AccountingContext] = None
        self._ledger: Optional[np.ndarray] = None          # (K, len(orders))
        self._participation: Optional[np.ndarray] = None   # (K,) rounds charged per client
        self._rounds_charged = 0
        self._equal_shard = MomentsAccountant(orders=self.orders)
        self._rdp_cache: Dict[Tuple[float, float], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Binding to a run
    # ------------------------------------------------------------------
    def bind_context(self, context: AccountingContext) -> None:
        """Attach the realised run facts (shard sizes, rates) to this accountant."""
        num_clients = len(context.shard_sizes)
        if self._ledger is None:
            self._ledger = np.zeros((num_clients, len(self.orders)), dtype=np.float64)
            self._participation = np.zeros(num_clients, dtype=np.int64)
        elif self._ledger.shape[0] != num_clients:
            raise ValueError(
                f"ledger tracks {self._ledger.shape[0]} clients but the context "
                f"has {num_clients} shards"
            )
        self._context = context
        self._equal_shard.bind_context(context)

    def _require_context(self) -> AccountingContext:
        if self._context is None:
            raise RuntimeError(
                "HeterogeneousAccountant is unbound; call bind_context(...) first "
                "(the simulation does this at construction)"
            )
        return self._context

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def _client_rate(self, client: int, level: str) -> float:
        context = self._require_context()
        if level == "client":
            # conditioned on participation, the update is a plain Gaussian release
            return 1.0
        return min(1.0, context.batch_size / context.shard_sizes[client])

    def _client_steps(self, client: int, charge_steps: int, level: str) -> int:
        if level == "client":
            return charge_steps
        context = self._require_context()
        upper = max(1, math.ceil(context.shard_sizes[client] / context.batch_size))
        return max(1, min(charge_steps, upper))

    def _rdp_curve(self, rate: float, noise_multiplier: float) -> np.ndarray:
        key = (rate, noise_multiplier)
        if key not in self._rdp_cache:
            self._rdp_cache[key] = compute_rdp_subsampled_gaussian(
                rate, noise_multiplier, self.orders
            )
        return self._rdp_cache[key]

    def charge_round(self, charge: RoundCharge, participants: Sequence[int]) -> None:
        """Charge one round's release to the clients that actually participated.

        An empty ``participants`` list (a skipped round) charges nothing —
        no update was released, so no privacy was spent.
        """
        self._require_context()
        if not participants:
            return
        cohort = sorted(set(int(k) for k in participants))
        # validate the whole cohort before mutating anything, so a rejected
        # round never leaves the ledger partially charged (and out of sync
        # with the embedded equal-shard accountant)
        for client in cohort:
            if not 0 <= client < self._ledger.shape[0]:
                raise ValueError(f"participant {client} is outside the client population")
        for client in cohort:
            rate = self._client_rate(client, charge.level)
            steps = self._client_steps(client, charge.steps, charge.level)
            self._ledger[client] += steps * self._rdp_curve(rate, charge.noise_multiplier)
            self._participation[client] += 1
        self._rounds_charged += 1
        self._equal_shard.charge_round(charge, participants)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _epsilons(self, ledger: np.ndarray, charged: np.ndarray, delta: float) -> np.ndarray:
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        orders = np.asarray(self.orders, dtype=np.float64)
        candidates = ledger + math.log(1.0 / delta) / (orders - 1.0)[None, :]
        epsilons = np.maximum(candidates.min(axis=1), 0.0)
        # a client that never participated has released nothing
        return np.where(charged, epsilons, 0.0)

    def epsilon_per_client(self, delta: float) -> np.ndarray:
        """Per-client epsilon distribution (0 for clients never charged)."""
        if self._ledger is None:
            raise RuntimeError("accountant is unbound; call bind_context(...) first")
        return self._epsilons(self._ledger, self._participation > 0, delta)

    def get_epsilon(self, delta: float) -> float:
        """Worst-case (maximum) per-client epsilon — the honest instance-level figure."""
        if self._ledger is None or self._rounds_charged == 0:
            return 0.0
        return float(self.epsilon_per_client(delta).max())

    def equal_shard_epsilon(self, delta: float) -> float:
        """The paper's equal-shard moments-accountant figure, for comparison."""
        return self._equal_shard.get_epsilon(delta)

    def projected_epsilon(self, charge: RoundCharge, delta: float) -> float:
        """Worst-case epsilon *if* one more round were charged to every client.

        Used for budget-driven early stopping: assuming full participation is
        the conservative projection, so a run never releases a round that
        could push any client past the budget.
        """
        self._require_context()
        projected = self._ledger.copy()
        for client in range(projected.shape[0]):
            rate = self._client_rate(client, charge.level)
            steps = self._client_steps(client, charge.steps, charge.level)
            projected[client] += steps * self._rdp_curve(rate, charge.noise_multiplier)
        return float(self._epsilons(projected, np.ones(projected.shape[0], bool), delta).max())

    @property
    def rounds_charged(self) -> int:
        """Number of (non-skipped) rounds charged so far."""
        return self._rounds_charged

    @property
    def participation_counts(self) -> np.ndarray:
        """Per-client count of rounds in which the client was charged."""
        if self._participation is None:
            raise RuntimeError("accountant is unbound; call bind_context(...) first")
        return self._participation.copy()

    def reset(self) -> None:
        """Forget all accumulated privacy spending (context stays bound)."""
        if self._ledger is not None:
            self._ledger[:] = 0.0
            self._participation[:] = 0
        self._rounds_charged = 0
        self._equal_shard.reset()

    # ------------------------------------------------------------------
    # Serialization (simulation checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the per-client ledger."""
        if self._ledger is None:
            raise RuntimeError("accountant is unbound; call bind_context(...) first")
        return {
            "accountant": self.name,
            "orders": list(self.orders),
            "ledger": self._ledger.tolist(),
            "participation": self._participation.tolist(),
            "rounds_charged": self._rounds_charged,
            "equal_shard": self._equal_shard.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state.get("accountant") != self.name:
            raise ValueError(
                f"checkpoint accountant {state.get('accountant')!r} does not match "
                f"{self.name!r}; was the run checkpointed with a different --accountant?"
            )
        orders = tuple(float(order) for order in state["orders"])
        ledger = np.asarray(state["ledger"], dtype=np.float64)
        participation = np.asarray(state["participation"], dtype=np.int64)
        if ledger.ndim != 2 or ledger.shape[1] != len(orders):
            raise ValueError("ledger shape does not match the order grid")
        if participation.shape != (ledger.shape[0],):
            raise ValueError("participation vector length does not match the ledger")
        if self._context is not None and ledger.shape[0] != len(self._context.shard_sizes):
            raise ValueError("checkpoint ledger does not match the bound client population")
        if orders != self.orders:
            self._rdp_cache = {}
        self.orders = orders
        self._ledger = ledger
        self._participation = participation
        self._rounds_charged = int(state["rounds_charged"])
        self._equal_shard.load_state_dict(state["equal_shard"])


#: Registry resolving ``FederatedConfig.accountant`` to an implementation.
ACCOUNTANTS = {
    "moments": MomentsAccountant,
    "heterogeneous": HeterogeneousAccountant,
}

#: The valid values of ``FederatedConfig.accountant`` (imported by the config).
ACCOUNTANT_NAMES: Tuple[str, ...] = tuple(ACCOUNTANTS)


def make_accountant(
    name: str,
    context: Optional[AccountingContext] = None,
    orders: Sequence[float] = DEFAULT_RDP_ORDERS,
):
    """Instantiate (and optionally bind) the accountant registered as ``name``."""
    if name not in ACCOUNTANTS:
        raise ValueError(f"unknown accountant {name!r}; expected one of {ACCOUNTANT_NAMES}")
    accountant = ACCOUNTANTS[name](orders=orders)
    if context is not None:
        accountant.bind_context(context)
    return accountant
