"""Noise mechanisms for differential privacy.

Implements the Gaussian mechanism of Definition 2 and its calibration rule
(Lemma 1): noise with standard deviation ``sigma * S`` added to a function of
L2-sensitivity ``S`` yields ``(epsilon, delta)``-DP when
``sigma^2 > 2 log(1.25 / delta) / epsilon^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["GaussianMechanism", "calibrate_sigma", "epsilon_for_sigma"]


def calibrate_sigma(epsilon: float, delta: float) -> float:
    """Smallest noise multiplier ``sigma`` satisfying Lemma 1 for one release.

    ``sigma^2 > 2 ln(1.25/delta) / epsilon^2`` (valid for ``0 < epsilon < 1``).
    """
    if not 0.0 < epsilon:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def epsilon_for_sigma(sigma: float, delta: float) -> float:
    """Inverse of :func:`calibrate_sigma`: epsilon guaranteed by a noise multiplier."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return math.sqrt(2.0 * math.log(1.25 / delta)) / sigma


@dataclass
class GaussianMechanism:
    """Additive Gaussian noise calibrated to an L2 sensitivity.

    Parameters
    ----------
    noise_scale:
        The noise multiplier ``sigma`` (the paper's default is 6).
    sensitivity:
        The L2 sensitivity ``S``; the paper estimates it with the clipping
        bound ``C`` (default 4), so the injected noise is ``N(0, sigma^2 C^2)``.
    """

    noise_scale: float
    sensitivity: float

    def __post_init__(self) -> None:
        if self.noise_scale < 0:
            raise ValueError(f"noise_scale must be non-negative, got {self.noise_scale}")
        if self.sensitivity < 0:
            raise ValueError(f"sensitivity must be non-negative, got {self.sensitivity}")

    @property
    def stddev(self) -> float:
        """Standard deviation ``sigma * S`` of the injected noise."""
        return self.noise_scale * self.sensitivity

    def add_noise(self, value: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return ``value`` plus iid Gaussian noise of standard deviation :attr:`stddev`."""
        rng = rng if rng is not None else np.random.default_rng()
        value = np.asarray(value, dtype=np.float64)
        if self.stddev == 0.0:
            return np.array(value, copy=True)
        return value + rng.normal(0.0, self.stddev, size=value.shape)

    def add_noise_to_list(
        self, values: Sequence[np.ndarray], rng: Optional[np.random.Generator] = None
    ) -> List[np.ndarray]:
        """Apply :meth:`add_noise` independently to each array in a list.

        This is the layer-wise form used by both Fed-SDP (Algorithm 1, line
        13) and Fed-CDP (Algorithm 2, line 14), where the model update is a
        list of per-layer arrays.
        """
        rng = rng if rng is not None else np.random.default_rng()
        return [self.add_noise(value, rng=rng) for value in values]

    def add_noise_to_stack(
        self, stack: Sequence[np.ndarray], rng: Optional[np.random.Generator] = None
    ) -> List[np.ndarray]:
        """Noise a stacked per-example representation in a single RNG call.

        ``stack`` holds one ``(B, *param_shape)`` array per layer (the output
        of :func:`repro.nn.perexample.per_example_gradients`).  All
        ``B * sum(param sizes)`` Gaussian draws happen in one flat
        ``(B, total)`` request that is then sliced per layer, so the consumed
        RNG stream is **identical** to looping over examples and calling
        :meth:`add_noise_to_list` on each example's per-layer gradients —
        a fixed seed yields a bitwise-identical sanitized update on either
        path.
        """
        rng = rng if rng is not None else np.random.default_rng()
        if self.stddev == 0.0:
            return [np.array(value, dtype=np.float64, copy=True) for value in stack]
        if not stack:
            return []
        batch = stack[0].shape[0]
        sizes = [int(np.prod(value.shape[1:], dtype=np.int64)) for value in stack]
        flat_noise = rng.normal(0.0, self.stddev, size=(batch, int(sum(sizes))))
        noised: List[np.ndarray] = []
        offset = 0
        for value, size in zip(stack, sizes):
            noise = flat_noise[:, offset : offset + size].reshape(value.shape)
            noised.append(np.asarray(value, dtype=np.float64) + noise)
            offset += size
        return noised

    def epsilon(self, delta: float) -> float:
        """Single-release epsilon implied by this mechanism's noise multiplier."""
        return epsilon_for_sigma(self.noise_scale, delta)

    def with_sensitivity(self, sensitivity: float) -> "GaussianMechanism":
        """A copy of this mechanism with a different sensitivity (e.g. a decayed C)."""
        return GaussianMechanism(self.noise_scale, sensitivity)
