"""Initialization seeds for the gradient reconstruction attack.

The attack starts from a dummy input of the same shape as the private training
data and iteratively updates it to match the leaked gradients.  Section III of
the paper notes that the choice of initialization seed has "significant impact
... on the attack success rate and attack cost" and that all experiments use
the *patterned random* seed of the CPL framework (Wei et al., ESORICS 2020)
for its high success rate and fast convergence.  Besides the patterned seed,
uniform-random, constant and zero seeds are provided for the ablation bench.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["patterned_random_seed", "uniform_random_seed", "constant_seed", "make_seed", "SEED_KINDS"]


SEED_KINDS: Tuple[str, ...] = ("patterned", "uniform", "constant", "zeros")


def patterned_random_seed(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
    patch_size: int = 4,
) -> np.ndarray:
    """Patterned random initialization: a small random patch tiled over the input.

    For image shapes ``(C, H, W)`` (or batches of them) a ``patch_size`` x
    ``patch_size`` random patch is tiled across the spatial dimensions, giving
    the repeated geometric texture of the CPL "patterned" seed.  For flat
    (tabular) shapes a random vector pattern of length ``patch_size`` is tiled.
    """
    rng = rng if rng is not None else np.random.default_rng()
    shape = tuple(int(s) for s in shape)
    if len(shape) >= 2:
        height, width = shape[-2], shape[-1]
        leading = shape[:-2]
        patch = rng.uniform(0.0, 1.0, size=leading + (patch_size, patch_size))
        reps_h = int(np.ceil(height / patch_size))
        reps_w = int(np.ceil(width / patch_size))
        tiled = np.tile(patch, (1,) * len(leading) + (reps_h, reps_w))
        return tiled[..., :height, :width].astype(np.float64)
    length = shape[0]
    pattern = rng.uniform(0.0, 1.0, size=patch_size)
    reps = int(np.ceil(length / patch_size))
    return np.tile(pattern, reps)[:length].astype(np.float64)


def uniform_random_seed(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Independent uniform noise in [0, 1] for every input entry."""
    rng = rng if rng is not None else np.random.default_rng()
    return rng.uniform(0.0, 1.0, size=tuple(int(s) for s in shape))


def constant_seed(shape: Tuple[int, ...], value: float = 0.5) -> np.ndarray:
    """A constant-valued dummy input."""
    return np.full(tuple(int(s) for s in shape), float(value))


def make_seed(
    kind: str,
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Create an attack seed of the requested kind (see :data:`SEED_KINDS`)."""
    kind = kind.lower()
    if kind == "patterned":
        return patterned_random_seed(shape, rng=rng)
    if kind == "uniform":
        return uniform_random_seed(shape, rng=rng)
    if kind == "constant":
        return constant_seed(shape)
    if kind == "zeros":
        return np.zeros(tuple(int(s) for s in shape))
    raise ValueError(f"unknown seed kind {kind!r}; expected one of {SEED_KINDS}")
