"""Attack-effectiveness metrics.

The paper reports three quantities per attack (Table VII): whether the attack
*succeeded*, the number of attack iterations needed, and the *reconstruction
distance*, defined as the root mean square deviation between the reconstructed
input and its private ground-truth counterpart.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["reconstruction_distance", "psnr", "attack_success_rate", "mean_attack_iterations"]


def reconstruction_distance(reconstruction: np.ndarray, ground_truth: np.ndarray) -> float:
    """Root mean squared deviation between reconstruction and ground truth.

    ``sqrt( (1/A) * sum_i (x_i - x_rec_i)^2 )`` with ``A`` the number of input
    features, matching the paper's definition in Section VII.
    """
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    if reconstruction.shape != ground_truth.shape:
        raise ValueError(
            f"shape mismatch: reconstruction {reconstruction.shape} vs ground truth {ground_truth.shape}"
        )
    return float(np.sqrt(np.mean((reconstruction - ground_truth) ** 2)))


def psnr(reconstruction: np.ndarray, ground_truth: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for a perfect reconstruction)."""
    rmse = reconstruction_distance(reconstruction, ground_truth)
    if rmse == 0.0:
        return float("inf")
    return float(20.0 * np.log10(data_range / rmse))


def _attribute(result, *names: str):
    """First present attribute of ``result`` among ``names``.

    The offline :class:`~repro.attacks.reconstruction.AttackResult` and the
    in-loop :class:`~repro.federated.server.AttackRecord` use slightly
    different field names (``succeeded``/``num_iterations`` vs
    ``success``/``iterations``); the aggregate metrics accept both.
    """
    for name in names:
        if hasattr(result, name):
            return getattr(result, name)
    raise AttributeError(f"attack result {result!r} has none of {names}")


def attack_success_rate(results: Iterable) -> float:
    """Fraction of attack results flagged as successful."""
    outcomes = [bool(_attribute(result, "succeeded", "success")) for result in results]
    if not outcomes:
        return 0.0
    return float(np.mean(outcomes))


def mean_attack_iterations(results: Iterable) -> float:
    """Average number of attack iterations across results (failed runs count at their cap)."""
    iterations = [int(_attribute(result, "num_iterations", "iterations")) for result in results]
    if not iterations:
        return 0.0
    return float(np.mean(iterations))
