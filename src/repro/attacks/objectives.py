"""Alternative gradient-matching objectives for the reconstruction attack.

The paper's attacks (and the CPL framework they follow) minimise the **L2
distance** between the dummy gradients and the leaked gradients.  The
follow-up attack of Geiping et al., "Inverting Gradients" (NeurIPS 2020, the
paper's reference [7]), instead maximises the **cosine similarity** of the two
gradients and adds a **total-variation prior** on the reconstructed image.
Both objectives are provided here so the attack harness and the ablation
benchmarks can compare them; all of them are composed from differentiable
:mod:`repro.autodiff` primitives, so the analytic input gradient used by the
L-BFGS attack loop keeps working.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autodiff import Tensor, sqrt, tsum

__all__ = [
    "OBJECTIVE_KINDS",
    "l2_matching_loss",
    "cosine_matching_loss",
    "total_variation",
    "build_matching_loss",
]


OBJECTIVE_KINDS = ("l2", "cosine")


def l2_matching_loss(dummy_gradients: Sequence[Tensor], target_gradients: Sequence[np.ndarray]) -> Tensor:
    """Sum of squared differences between dummy and leaked gradients (the paper's loss)."""
    total = None
    for computed, target in zip(dummy_gradients, target_gradients):
        diff = computed - Tensor(np.asarray(target, dtype=np.float64))
        term = (diff * diff).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("at least one gradient block is required")
    return total


def cosine_matching_loss(
    dummy_gradients: Sequence[Tensor],
    target_gradients: Sequence[np.ndarray],
    eps: float = 1e-12,
) -> Tensor:
    """``1 - cos(g_dummy, g_target)`` over the concatenated gradients.

    This is the objective of Geiping et al. [7]; it is scale-invariant in the
    gradient magnitude, which makes it more robust when the leaked gradient
    has been rescaled (e.g. averaged over an unknown batch size).
    """
    dot = None
    dummy_sq = None
    target_sq = 0.0
    for computed, target in zip(dummy_gradients, target_gradients):
        target_array = np.asarray(target, dtype=np.float64)
        target_tensor = Tensor(target_array)
        term_dot = (computed * target_tensor).sum()
        term_sq = (computed * computed).sum()
        dot = term_dot if dot is None else dot + term_dot
        dummy_sq = term_sq if dummy_sq is None else dummy_sq + term_sq
        target_sq += float(np.sum(target_array * target_array))
    if dot is None:
        raise ValueError("at least one gradient block is required")
    denominator = sqrt(dummy_sq + Tensor(eps)) * Tensor(float(np.sqrt(target_sq + eps)))
    cosine = dot / denominator
    return Tensor(1.0) - cosine


def total_variation(image: Tensor) -> Tensor:
    """Anisotropic total variation of an ``(N, C, H, W)`` image batch.

    Used as a smoothness prior on the reconstruction (Geiping et al.); it is
    the sum of absolute differences between horizontally and vertically
    adjacent pixels, normalised by the number of pixels.
    """
    if image.ndim != 4:
        raise ValueError(f"total_variation expects an (N, C, H, W) tensor, got shape {image.shape}")
    batch, channels, height, width = image.shape
    if height < 2 or width < 2:
        return Tensor(0.0)
    # One-pixel shifts are expressed as constant shift matrices applied with
    # matmul, which keeps the whole prior inside the differentiable op set
    # (and therefore compatible with the attack's double-backprop gradients).
    down_shift_mask = np.zeros((height, height))
    for row in range(height - 1):
        down_shift_mask[row, row + 1] = 1.0
    right_shift_mask = np.zeros((width, width))
    for col in range(width - 1):
        right_shift_mask[col, col + 1] = 1.0

    # vertical differences: x[:, :, i+1, :] - x[:, :, i, :]
    flat_rows = image.reshape((batch * channels, height, width))
    shifted_rows = _left_multiply_rows(flat_rows, down_shift_mask)
    vertical = (shifted_rows - flat_rows).abs()
    vertical = _zero_last_row(vertical, height)

    # horizontal differences: x[:, :, :, j+1] - x[:, :, :, j]
    shifted_cols = _right_multiply_cols(flat_rows, right_shift_mask)
    horizontal = (shifted_cols - flat_rows).abs()
    horizontal = _zero_last_col(horizontal, width)

    count = float(batch * channels * height * width)
    return (tsum(vertical) + tsum(horizontal)) / Tensor(count)


def _left_multiply_rows(stack: Tensor, shift: np.ndarray) -> Tensor:
    """Apply a row-shift matrix to every (H, W) slice of an (M, H, W) tensor."""
    m, height, width = stack.shape
    flat = stack.transpose((1, 0, 2)).reshape((height, m * width))
    from repro.autodiff import matmul

    shifted = matmul(Tensor(shift), flat)
    return shifted.reshape((height, m, width)).transpose((1, 0, 2))


def _right_multiply_cols(stack: Tensor, shift: np.ndarray) -> Tensor:
    """Apply a column-shift matrix to every (H, W) slice of an (M, H, W) tensor."""
    m, height, width = stack.shape
    flat = stack.reshape((m * height, width))
    from repro.autodiff import matmul

    shifted = matmul(flat, Tensor(shift.T))
    return shifted.reshape((m, height, width))


def _zero_last_row(stack: Tensor, height: int) -> Tensor:
    mask = np.ones((1, height, 1))
    mask[0, height - 1, 0] = 0.0
    return stack * Tensor(mask)


def _zero_last_col(stack: Tensor, width: int) -> Tensor:
    mask = np.ones((1, 1, width))
    mask[0, 0, width - 1] = 0.0
    return stack * Tensor(mask)


def build_matching_loss(
    kind: str,
    dummy_gradients: Sequence[Tensor],
    target_gradients: Sequence[np.ndarray],
    dummy_input: Tensor,
    tv_weight: float = 0.0,
) -> Tensor:
    """Assemble the attack objective: gradient matching plus optional TV prior."""
    kind = kind.lower()
    if kind == "l2":
        loss = l2_matching_loss(dummy_gradients, target_gradients)
    elif kind == "cosine":
        loss = cosine_matching_loss(dummy_gradients, target_gradients)
    else:
        raise ValueError(f"unknown objective {kind!r}; expected one of {OBJECTIVE_KINDS}")
    if tv_weight > 0.0 and dummy_input.ndim == 4:
        loss = loss + Tensor(float(tv_weight)) * total_variation(dummy_input)
    return loss
