"""Gradient reconstruction attack (client privacy leakage / deep leakage from gradients).

The attack follows the five-step schema of Figure 1a in the paper:

1. initialise a dummy input (the *attack seed*) with the same shape as the
   private training data;
2. feed it through the client's local model;
3. obtain the dummy input's gradients by backpropagation;
4. compute the L2 distance between the dummy gradients and the leaked
   gradients stolen from the client;
5. update the dummy input to minimise that distance with an L-BFGS optimizer,
   iterating until a maximum number of attack iterations ``T`` (300 by
   default) or until the gradient-matching loss drops below a success
   threshold.

The gradient of the matching loss with respect to the dummy input is computed
analytically with the double-backprop support of :mod:`repro.autodiff`
(``create_graph=True``), and handed to ``scipy.optimize``'s L-BFGS-B — the
same optimizer family the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.autodiff import Tensor, grad
from repro.nn import CrossEntropyLoss, Sequential

from .metrics import reconstruction_distance
from .seeds import make_seed

__all__ = ["AttackConfig", "AttackResult", "GradientReconstructionAttack", "infer_label_from_gradients"]


@dataclass
class AttackConfig:
    """Tunable parameters of the reconstruction attack (Figure 1a)."""

    #: maximum number of attack iterations ``T`` (the paper uses 300)
    max_iterations: int = 300
    #: gradient-matching loss below which the attack is declared successful
    success_loss_threshold: float = 1e-4
    #: success is also declared when the matching loss drops below this
    #: fraction of the leaked gradient's squared L2 norm (scale-invariant
    #: criterion; sanitised gradients cannot be matched this closely)
    success_relative_threshold: float = 1e-3
    #: attack-seed initialization kind (the paper uses ``patterned``)
    seed_kind: str = "patterned"
    #: clamp the reconstruction into this value range (images live in [0, 1])
    value_range: Tuple[float, float] = (0.0, 1.0)
    #: whether the adversary knows the true label (otherwise inferred)
    label_known: bool = True
    #: gradient-matching objective: ``"l2"`` (the paper / DLG) or ``"cosine"``
    #: (Geiping et al., the paper's reference [7])
    objective: str = "l2"
    #: weight of the total-variation smoothness prior on image reconstructions
    tv_weight: float = 0.0

    def __post_init__(self) -> None:
        from .objectives import OBJECTIVE_KINDS

        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.success_loss_threshold <= 0:
            raise ValueError("success_loss_threshold must be positive")
        if self.success_relative_threshold <= 0:
            raise ValueError("success_relative_threshold must be positive")
        if self.value_range[0] >= self.value_range[1]:
            raise ValueError("value_range must be an increasing pair")
        if self.objective not in OBJECTIVE_KINDS:
            raise ValueError(f"unknown objective {self.objective!r}; expected one of {OBJECTIVE_KINDS}")
        if self.tv_weight < 0:
            raise ValueError("tv_weight must be non-negative")


@dataclass
class AttackResult:
    """Outcome of one reconstruction attack."""

    #: whether the gradient-matching loss reached the success threshold
    succeeded: bool
    #: number of attack iterations performed before success / give-up
    num_iterations: int
    #: final gradient-matching loss
    final_loss: float
    #: RMSE between the reconstruction and the private ground truth
    reconstruction_distance: float
    #: the reconstructed input(s)
    reconstruction: np.ndarray
    #: gradient-matching loss after each attack iteration
    loss_history: List[float] = field(default_factory=list)
    #: label(s) used by the attacker (ground truth or inferred)
    labels_used: Optional[np.ndarray] = None


def infer_label_from_gradients(target_gradients: Sequence[np.ndarray], model: Sequential) -> int:
    """Single-example label inference from the last layer's bias gradient.

    For softmax cross-entropy on a single example the gradient of the final
    bias is ``p - onehot(y)``: exactly one entry is negative, and it marks the
    true class (the iDLG observation).  Falls back to the most-negative entry
    of the last gradient block when no bias gradient is available.
    """
    last = np.asarray(target_gradients[-1], dtype=np.float64).reshape(-1)
    return int(np.argmin(last))


class GradientReconstructionAttack:
    """Reconstruct private inputs from leaked gradients of a known model."""

    def __init__(
        self,
        model: Sequential,
        config: Optional[AttackConfig] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else AttackConfig()
        self._loss_fn = CrossEntropyLoss()

    # ------------------------------------------------------------------
    # Attack objective
    # ------------------------------------------------------------------
    def _gradient_matching_loss_and_grad(
        self,
        dummy_flat: np.ndarray,
        input_shape: Tuple[int, ...],
        labels: np.ndarray,
        target_gradients: Sequence[np.ndarray],
    ) -> Tuple[float, np.ndarray]:
        """Value and input-gradient of the configured gradient-matching objective."""
        from .objectives import build_matching_loss

        params = self.model.parameters()
        dummy = Tensor(dummy_flat.reshape(input_shape), requires_grad=True)
        logits = self.model(dummy)
        loss = self._loss_fn(logits, labels)
        dummy_gradients = grad(loss, params, create_graph=True)
        matching = build_matching_loss(
            self.config.objective, dummy_gradients, target_gradients, dummy, tv_weight=self.config.tv_weight
        )
        (input_gradient,) = grad(matching, [dummy])
        return float(matching.item()), input_gradient.numpy().reshape(-1)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        target_gradients: Sequence[np.ndarray],
        example_shape: Tuple[int, ...],
        ground_truth: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        batch_size: int = 1,
        global_weights: Optional[Sequence[np.ndarray]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> AttackResult:
        """Run the reconstruction attack against a leaked gradient.

        Parameters
        ----------
        target_gradients:
            The leaked per-layer gradients (single example for a type-2
            attack, batch-averaged for type-0/1 attacks).
        example_shape:
            Shape of one private example, e.g. ``(1, 28, 28)`` or ``(105,)``.
        ground_truth:
            Optional private input(s), used only to report the reconstruction
            distance; the attack itself never reads it.
        labels:
            True labels when the adversary knows them
            (``config.label_known``); otherwise inferred from the gradients.
        batch_size:
            Number of examples to reconstruct jointly (the paper's type-0/1
            attack reconstructs a batch of 3).
        global_weights:
            Model weights at the moment of the leak; when given, loaded into
            the model before the attack (the adversary knows the model).
        rng:
            Random generator for the attack seed.
        """
        rng = rng if rng is not None else np.random.default_rng()
        config = self.config
        if global_weights is not None:
            self.model.set_weights(list(global_weights))

        input_shape = (batch_size,) + tuple(int(s) for s in example_shape)
        if labels is None or not config.label_known:
            inferred = infer_label_from_gradients(target_gradients, self.model)
            labels = np.full(batch_size, inferred, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if labels.shape[0] != batch_size:
            raise ValueError(f"expected {batch_size} labels, got {labels.shape[0]}")

        seed = make_seed(config.seed_kind, input_shape, rng=rng)
        low, high = config.value_range
        bounds = [(low, high)] * int(np.prod(input_shape))

        if config.objective == "l2":
            # Scale-aware success criterion: the loss is compared against the
            # leaked gradient's own squared norm.
            target_squared_norm = float(
                sum(np.sum(np.square(np.asarray(g, dtype=np.float64))) for g in target_gradients)
            )
            effective_threshold = max(
                config.success_loss_threshold,
                config.success_relative_threshold * target_squared_norm,
            )
        else:
            # The cosine objective is already scale-invariant (range [0, 2]).
            effective_threshold = config.success_loss_threshold

        loss_history: List[float] = []
        state = {
            "best_loss": float("inf"),
            "best_flat": seed.reshape(-1).copy(),
            "last_loss": float("inf"),
            "iterations": 0,
        }

        def objective(flat: np.ndarray) -> Tuple[float, np.ndarray]:
            value, gradient = self._gradient_matching_loss_and_grad(
                flat, input_shape, labels, target_gradients
            )
            state["last_loss"] = value
            if value < state["best_loss"]:
                state["best_loss"] = value
                state["best_flat"] = np.array(flat, copy=True)
            return value, gradient

        def callback(flat: np.ndarray) -> None:
            state["iterations"] += 1
            loss_history.append(state["last_loss"])
            if state["best_loss"] < effective_threshold:
                # Early termination once the reconstruction matches the leaked
                # gradients; supported natively by scipy >= 1.11 and caught
                # below for older releases.
                raise StopIteration

        try:
            optimize.minimize(
                objective,
                seed.reshape(-1),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                callback=callback,
                options={"maxiter": config.max_iterations, "ftol": 0.0, "gtol": 1e-12},
            )
        except StopIteration:
            pass
        final_flat = state["best_flat"]
        final_loss = state["best_loss"] if np.isfinite(state["best_loss"]) else state["last_loss"]
        iterations = state["iterations"] if state["iterations"] > 0 else config.max_iterations
        succeeded = final_loss < effective_threshold

        reconstruction = np.clip(final_flat.reshape(input_shape), low, high)
        if batch_size == 1:
            reconstruction_out = reconstruction[0]
        else:
            reconstruction_out = reconstruction

        distance = float("nan")
        if ground_truth is not None:
            truth = np.asarray(ground_truth, dtype=np.float64)
            if truth.shape == reconstruction_out.shape:
                distance = reconstruction_distance(reconstruction_out, truth)
            else:
                distance = reconstruction_distance(reconstruction.reshape(truth.shape), truth)

        return AttackResult(
            succeeded=bool(succeeded),
            num_iterations=int(min(iterations, config.max_iterations)),
            final_loss=float(final_loss),
            reconstruction_distance=distance,
            reconstruction=reconstruction_out,
            loss_history=loss_history,
            labels_used=labels,
        )
