"""Adaptive attack-budget policy: tune the reconstructor to what it observes.

The DLG / gradient-inversion literature's standing criticism of defence
evaluations is that a *fixed* attacker understates leakage: a real adversary
adapts its effort to the signal it actually sees.  This module implements the
simplest useful form of that adaptivity for the in-loop adversary — a
stateless policy that scales the multi-restart reconstruction budget
(restarts and optimiser iterations) from the observed gradient's L2 norm.

A sanitised observation betrays itself through its norm: per-example
clipping pins it at the announced bound, and the added Gaussian noise
inflates it far above (the noise dominates across thousands of
parameters).  The policy therefore spends its budget on *anomaly* — the
further the observed norm deviates (in ratio) from the defender's announced
clipping bound, the more restarts and iterations the attacker burns trying
to crack the observation; a crisp norm near the bound gets the base
budget.  The policy is a pure function of the
observation, which is what keeps the adaptive adversary inside the PR-3/PR-5
determinism contract: no state carries across rounds or clients, so serial ≡
multiprocessing ≡ checkpoint-resume stays bit-identical, and every random
draw the adaptive attacker makes comes from its own dedicated
:data:`ADAPTIVE_ATTACK_DOMAIN` RNG domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ADAPTIVE_ATTACK_DOMAIN",
    "AdaptiveBudget",
    "observed_update_norm",
    "tune_attack_budget",
]


#: Domain-separation tag for every RNG stream the adaptive attacker consumes
#: (probe choice, observation sanitisation draws, restart dummy seeds) —
#: sibling of :data:`repro.attacks.schedule.ATTACK_DOMAIN` and the client /
#: availability / shard domains listed in :mod:`repro.federated.executor`.
ADAPTIVE_ATTACK_DOMAIN = 0x0ADA907


@dataclass
class AdaptiveBudget:
    """The reconstruction budget the adaptive policy settled on."""

    #: dummy-seed restarts to optimise (batched)
    restarts: int
    #: optimiser iteration cap per attack
    iterations: int
    #: global L2 norm of the observed gradient that drove the decision
    observed_norm: float
    #: multiplicative budget factor actually applied (after clamping)
    factor: float


def observed_update_norm(gradients: Sequence[np.ndarray]) -> float:
    """Global L2 norm of an observed per-layer gradient (the policy's input)."""
    total = 0.0
    for layer in gradients:
        layer = np.asarray(layer, dtype=np.float64)
        total += float(np.sum(layer * layer))
    return float(np.sqrt(total))


def tune_attack_budget(
    observed_norm: float,
    reference_norm: float,
    base_restarts: int,
    base_iterations: int,
    min_factor: float = 1.0,
    max_factor: float = 4.0,
) -> AdaptiveBudget:
    """Scale the base budget by how anomalous the observation's norm looks.

    With deviation ratio ``d = max(observed / reference, reference /
    observed) >= 1``, the budget factor is ``sqrt(d)`` clamped to
    ``[min_factor, max_factor]``: an observation whose norm sits at the
    announced clipping bound looks unsanitised and gets the base budget,
    while one whose norm is pinned far below it (pure clipping) *or*
    inflated far above it (dominating Gaussian noise) earns up to
    ``max_factor`` times the restarts and iterations.  A degenerate (zero /
    non-finite) observation gets the maximum budget — a fully suppressed
    signal is exactly the case a persistent adversary grinds on.
    """
    if base_restarts < 1 or base_iterations < 1:
        raise ValueError("base_restarts and base_iterations must be at least 1")
    if reference_norm <= 0:
        raise ValueError("reference_norm must be positive")
    if not 0 < min_factor <= max_factor:
        raise ValueError("need 0 < min_factor <= max_factor")
    observed_norm = float(observed_norm)
    if not np.isfinite(observed_norm) or observed_norm <= 0.0:
        factor = float(max_factor)
    else:
        ratio = observed_norm / float(reference_norm)
        deviation = max(ratio, 1.0 / ratio)
        factor = float(np.clip(np.sqrt(deviation), min_factor, max_factor))
    return AdaptiveBudget(
        restarts=max(1, int(round(base_restarts * factor))),
        iterations=max(1, int(round(base_iterations * factor))),
        observed_norm=observed_norm,
        factor=factor,
    )
