"""Batched multi-restart gradient reconstruction (the in-loop attack engine).

The reconstruction attack of :mod:`repro.attacks.reconstruction` is sensitive
to its dummy-seed initialisation (Section III of the paper), so a serious
adversary restarts it from several seeds and keeps the best reconstruction.
Run naively, ``R`` restarts cost ``R`` full L-BFGS optimisations — far too
slow to execute inside every attacked round of a federated simulation.

This module runs all restarts as **one batched optimisation** instead: the
``R`` dummy inputs are stacked into a single ``(R, *example_shape)`` batch
and optimised jointly under the separable objective

    J(x_1, ..., x_R) = sum_r  || g(x_r) - G ||_2^2

where ``g(x_r)`` is restart ``r``'s per-example parameter gradient and ``G``
the leaked target.  Because every layer treats batch rows independently, the
per-restart gradients come out of *one* forward/backward pass via the same
per-sample gradient rules as the PR-1 per-example engine
(:mod:`repro.nn.perexample`): for a dense layer the per-restart weight
gradient is the outer product of the saved input activation and the upstream
gradient.  Here those rules are applied **inside the autodiff graph** (the
activations and the ``create_graph=True`` upstream gradients are both graph
nodes), so one more backward pass yields the exact input gradient of the
whole batched objective — the restarts never interact, their gradient blocks
are independent, and each restart's loss trajectory matches what a standalone
single-restart optimisation of the same objective would see.

Models containing layers without a dense per-sample rule (the image CNNs),
or non-L2 objectives, transparently fall back to a looped evaluation of the
same joint objective — identical semantics, one forward/backward per restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.autodiff import Tensor, grad, tsum
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.models import Sequential

from .metrics import psnr as compute_psnr
from .metrics import reconstruction_distance
from .reconstruction import AttackConfig, GradientReconstructionAttack
from .seeds import make_seed

__all__ = [
    "MultiRestartResult",
    "MultiRestartReconstruction",
    "supports_vectorized_restarts",
]


def supports_vectorized_restarts(model, config: AttackConfig) -> bool:
    """Whether the batched dense-rule path applies to ``model`` and ``config``.

    Requires a flat :class:`~repro.nn.models.Sequential` whose parameterised
    layers are all ``Dense`` (the tabular MLPs), the paper's L2 matching
    objective and no total-variation prior; anything else runs the looped
    fallback with identical semantics.
    """
    if config.objective != "l2" or config.tv_weight > 0.0:
        return False
    if not isinstance(model, Sequential):
        return False
    for layer in model.layers:
        if isinstance(layer, Dense):
            continue
        if layer.parameters():
            return False
    return True


@dataclass
class MultiRestartResult:
    """Outcome of one batched multi-restart reconstruction."""

    #: whether any restart's matching loss reached the success threshold
    succeeded: bool
    #: joint optimiser iterations performed before success / give-up
    num_iterations: int
    #: best matching loss across restarts (the winning restart's loss)
    final_loss: float
    #: RMSE between the winning reconstruction and the private ground truth
    reconstruction_distance: float
    #: PSNR (dB) of the winning reconstruction over the config's value range
    psnr: float
    #: the winning restart's reconstruction, shaped like one example
    reconstruction: np.ndarray
    #: index of the restart that produced the best matching loss
    best_restart: int
    #: number of restarts optimised jointly
    restarts: int
    #: best matching loss reached by each restart
    per_restart_losses: List[float] = field(default_factory=list)
    #: True when the batched dense-rule path ran (False = looped fallback)
    vectorized: bool = False
    #: label(s) the adversary used
    labels_used: Optional[np.ndarray] = None


def _instrumented_dense_forward(model: Sequential, batch: Tensor):
    """Forward ``batch`` keeping, per Dense layer, the input activation and
    output *as graph tensors* (the differentiable analogue of the per-example
    engine's instrumented forward)."""
    x = batch
    tape = []  # (layer, input_tensor, output_tensor)
    for layer in model.layers:
        if isinstance(layer, Dense):
            xin = x if x.ndim == 2 else F.flatten(x)
            out = F.linear(xin, layer.weight, layer.bias)
            tape.append((layer, xin, out))
            x = out
        else:
            x = layer(x)
    return x, tape


def _per_restart_l2_losses(tape, upstream, target_gradients: Sequence[np.ndarray]) -> Tensor:
    """Per-restart L2 matching losses as a differentiable ``(R,)`` tensor.

    Restart ``r``'s weight gradient for a dense layer is the outer product
    ``x[r] ⊗ g[r]`` (the PR-1 per-sample rule) and its bias gradient is
    ``g[r]`` itself; both are assembled from graph tensors, so the result is
    differentiable with respect to the dummy inputs.
    """
    per_restart = None
    target_index = 0
    for (layer, xin, _), up in zip(tape, upstream):
        restarts, in_features = xin.shape
        out_features = up.shape[1]
        target_w = np.asarray(target_gradients[target_index], dtype=np.float64)
        target_index += 1
        stack = xin.reshape((restarts, in_features, 1)) * up.reshape((restarts, 1, out_features))
        diff = stack - Tensor(target_w[None])
        term = (diff * diff).sum(axis=(1, 2))
        per_restart = term if per_restart is None else per_restart + term
        if layer.bias is not None:
            target_b = np.asarray(target_gradients[target_index], dtype=np.float64)
            target_index += 1
            diff_b = up - Tensor(target_b[None])
            per_restart = per_restart + (diff_b * diff_b).sum(axis=1)
    if target_index != len(target_gradients):
        raise ValueError(
            f"target gradient count {len(target_gradients)} does not match the "
            f"model's {target_index} dense parameter blocks"
        )
    return per_restart


class MultiRestartReconstruction:
    """Reconstruct one private example from R dummy seeds in one optimisation."""

    def __init__(self, model: Sequential, config: Optional[AttackConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else AttackConfig()
        # the looped fallback reuses the single-restart objective machinery,
        # which also handles the cosine objective and the TV prior
        self._single = GradientReconstructionAttack(model, self.config)

    # ------------------------------------------------------------------
    # Joint objective: value, flat gradient and per-restart losses
    # ------------------------------------------------------------------
    def _objective_vectorized(
        self,
        flat: np.ndarray,
        batch_shape: Tuple[int, ...],
        labels: np.ndarray,
        target_gradients: Sequence[np.ndarray],
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        dummies = Tensor(flat.reshape(batch_shape), requires_grad=True)
        logits, tape = _instrumented_dense_forward(self.model, dummies)
        # sum reduction keeps row r of every upstream gradient equal to the
        # gradient of restart r's own loss (the per-example engine invariant)
        loss_sum = F.cross_entropy_with_logits(logits, labels, reduction="sum")
        upstream = grad(loss_sum, [out for _, _, out in tape], create_graph=True)
        per_restart = _per_restart_l2_losses(tape, upstream, target_gradients)
        total = tsum(per_restart)
        (input_gradient,) = grad(total, [dummies])
        return (
            float(total.item()),
            input_gradient.numpy().reshape(-1),
            np.asarray(per_restart.numpy(), dtype=np.float64).reshape(-1),
        )

    def _objective_looped(
        self,
        flat: np.ndarray,
        batch_shape: Tuple[int, ...],
        labels: np.ndarray,
        target_gradients: Sequence[np.ndarray],
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        restarts = batch_shape[0]
        example_shape = (1,) + tuple(batch_shape[1:])
        flats = flat.reshape(restarts, -1)
        per_restart = np.empty(restarts, dtype=np.float64)
        gradients = []
        for restart in range(restarts):
            value, gradient = self._single._gradient_matching_loss_and_grad(
                flats[restart], example_shape, labels[restart : restart + 1], target_gradients
            )
            per_restart[restart] = value
            gradients.append(gradient)
        return float(per_restart.sum()), np.concatenate(gradients), per_restart

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        target_gradients: Sequence[np.ndarray],
        example_shape: Tuple[int, ...],
        restart_seeds: Sequence[np.random.SeedSequence],
        ground_truth: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        global_weights: Optional[Sequence[np.ndarray]] = None,
    ) -> MultiRestartResult:
        """Run the batched multi-restart attack against one leaked gradient.

        ``restart_seeds`` supplies one independent ``SeedSequence`` per dummy
        restart (the in-loop scheduler keys them on
        ``(config seed, attack domain, round, client, restart)``), which is
        the only randomness the attack consumes.
        """
        config = self.config
        if not restart_seeds:
            raise ValueError("at least one restart seed is required")
        if labels is None:
            raise ValueError("the in-loop attack requires the target label")
        if global_weights is not None:
            self.model.set_weights(list(global_weights))

        num_params = len(self.model.parameters())
        if len(target_gradients) != num_params:
            raise ValueError(
                f"expected {num_params} target gradient blocks (one per model "
                f"parameter), got {len(target_gradients)}"
            )

        restarts = len(restart_seeds)
        example_shape = tuple(int(s) for s in example_shape)
        batch_shape = (restarts,) + example_shape
        labels = np.broadcast_to(np.asarray(labels, dtype=np.int64).reshape(-1), (restarts,))
        target_gradients = [np.asarray(g, dtype=np.float64) for g in target_gradients]

        dummies = np.stack(
            [
                make_seed(config.seed_kind, example_shape, rng=np.random.default_rng(seed))
                for seed in restart_seeds
            ]
        )
        low, high = config.value_range
        example_size = int(np.prod(example_shape))
        bounds = [(low, high)] * (restarts * example_size)

        vectorized = supports_vectorized_restarts(self.model, config)
        evaluate = self._objective_vectorized if vectorized else self._objective_looped

        if config.objective == "l2":
            target_squared_norm = float(sum(np.sum(np.square(g)) for g in target_gradients))
            effective_threshold = max(
                config.success_loss_threshold,
                config.success_relative_threshold * target_squared_norm,
            )
        else:
            effective_threshold = config.success_loss_threshold

        best_losses = np.full(restarts, np.inf)
        best_flats = dummies.reshape(restarts, -1).copy()
        last_losses = np.full(restarts, np.inf)
        state = {"iterations": 0}

        def objective(flat: np.ndarray) -> Tuple[float, np.ndarray]:
            total, gradient, per_restart = evaluate(
                flat, batch_shape, labels, target_gradients
            )
            last_losses[:] = per_restart
            improved = per_restart < best_losses
            if improved.any():
                best_losses[improved] = per_restart[improved]
                best_flats[improved] = flat.reshape(restarts, -1)[improved]
            return total, gradient

        def callback(flat: np.ndarray) -> None:
            state["iterations"] += 1
            if best_losses.min() < effective_threshold:
                raise StopIteration

        try:
            optimize.minimize(
                objective,
                dummies.reshape(-1),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                callback=callback,
                options={"maxiter": config.max_iterations, "ftol": 0.0, "gtol": 1e-12},
            )
        except StopIteration:
            pass

        finals = np.where(np.isfinite(best_losses), best_losses, last_losses)
        best_restart = int(np.argmin(finals))
        final_loss = float(finals[best_restart])
        iterations = state["iterations"] if state["iterations"] > 0 else config.max_iterations
        reconstruction = np.clip(best_flats[best_restart].reshape(example_shape), low, high)

        distance = float("nan")
        psnr_value = float("nan")
        if ground_truth is not None:
            truth = np.asarray(ground_truth, dtype=np.float64).reshape(example_shape)
            distance = reconstruction_distance(reconstruction, truth)
            psnr_value = compute_psnr(reconstruction, truth, data_range=high - low)

        return MultiRestartResult(
            succeeded=bool(final_loss < effective_threshold),
            num_iterations=int(min(iterations, config.max_iterations)),
            final_loss=final_loss,
            reconstruction_distance=distance,
            psnr=psnr_value,
            reconstruction=reconstruction,
            best_restart=best_restart,
            restarts=restarts,
            per_restart_losses=[float(v) for v in finals],
            vectorized=vectorized,
            labels_used=np.array(labels, copy=True),
        )
