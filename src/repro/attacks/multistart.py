"""Batched multi-restart gradient reconstruction (the in-loop attack engine).

The reconstruction attack of :mod:`repro.attacks.reconstruction` is sensitive
to its dummy-seed initialisation (Section III of the paper), so a serious
adversary restarts it from several seeds and keeps the best reconstruction.
Run naively, ``R`` restarts cost ``R`` full L-BFGS optimisations — far too
slow to execute inside every attacked round of a federated simulation.

This module runs all restarts as **one batched optimisation** instead: the
``R`` dummy inputs are stacked into a single ``(R, *example_shape)`` batch
and optimised jointly under the separable objective

    J(x_1, ..., x_R) = sum_r  J(x_r)

where ``J(x_r)`` is restart ``r``'s gradient-matching loss against the leaked
target (any objective of :mod:`repro.attacks.objectives`, including the
cosine loss and the total-variation prior).  The engine is the batched-graph
transform of :mod:`repro.autodiff.batched`: the *single-restart* objective —
forward pass, ``create_graph=True`` parameter gradients, matching loss and
its input gradient — is traced once per attack, and every L-BFGS evaluation
replays that trace over the stacked restarts in one batched pass.  Because
every batch rule maps restarts independently, the restarts never interact:
their gradient blocks are exactly what ``R`` standalone optimisations would
compute, and each restart's loss trajectory matches a single-restart run of
the same objective.

This replaces the PR-5 dense-rule construction, which hand-assembled
per-restart L2 losses from ``Dense``-layer outer products and therefore
excluded conv models, the cosine objective and the TV prior — all of which
now run vectorized.  The looped evaluation of the same joint objective is
kept behind the ``force_looped`` debug flag (and as the fallback for models
outside the traceable family) and is regression-tested against the batched
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.autodiff import BatchedGraph, Tensor, grad, logsumexp, mul, tracing, tsum
from repro.nn.models import Sequential
from repro.nn.perexample import has_per_example_rules

from .metrics import psnr as compute_psnr
from .metrics import reconstruction_distance
from .objectives import build_matching_loss
from .reconstruction import AttackConfig, GradientReconstructionAttack
from .seeds import make_seed

__all__ = [
    "MultiRestartResult",
    "MultiRestartReconstruction",
    "supports_vectorized_restarts",
]


def supports_vectorized_restarts(model, config: AttackConfig) -> bool:
    """Whether the batched-graph trace path applies to ``model`` and ``config``.

    The requirement is purely structural: a flat
    :class:`~repro.nn.models.Sequential` whose parameterised layers are
    traceable (the same condition as
    :func:`repro.nn.perexample.has_per_example_rules`, i.e. ``Dense``,
    ``Conv2D`` and parameter-free layers).  Every supported objective —
    including the cosine loss and the total-variation prior — is composed
    from replayable primitives, so ``config`` no longer restricts the path.
    """
    del config  # every supported objective / prior is traceable
    return has_per_example_rules(model)


@dataclass
class MultiRestartResult:
    """Outcome of one batched multi-restart reconstruction."""

    #: whether any restart's matching loss reached the success threshold
    succeeded: bool
    #: joint optimiser iterations performed before success / give-up
    num_iterations: int
    #: best matching loss across restarts (the winning restart's loss)
    final_loss: float
    #: RMSE between the winning reconstruction and the private ground truth
    reconstruction_distance: float
    #: PSNR (dB) of the winning reconstruction over the config's value range
    psnr: float
    #: the winning restart's reconstruction, shaped like one example
    reconstruction: np.ndarray
    #: index of the restart that produced the best matching loss
    best_restart: int
    #: number of restarts optimised jointly
    restarts: int
    #: best matching loss reached by each restart
    per_restart_losses: List[float] = field(default_factory=list)
    #: True when the batched-graph path ran (False = looped fallback)
    vectorized: bool = False
    #: label(s) the adversary used
    labels_used: Optional[np.ndarray] = None


class MultiRestartReconstruction:
    """Reconstruct one private example from R dummy seeds in one optimisation.

    ``force_looped`` forces the looped evaluation of the joint objective even
    for models the batched path supports — a debugging escape hatch (and the
    reference the batched path is regression-tested against).
    """

    def __init__(
        self,
        model: Sequential,
        config: Optional[AttackConfig] = None,
        force_looped: bool = False,
    ) -> None:
        self.model = model
        self.config = config if config is not None else AttackConfig()
        self.force_looped = bool(force_looped)
        # the looped fallback reuses the single-restart objective machinery
        self._single = GradientReconstructionAttack(model, self.config)
        # single-slot trace cache: (key, BatchedGraph, num_classes, pinned
        # target arrays).  The targets are baked into the graph by reference,
        # so the key includes their identities and the cache pins them alive.
        self._trace: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Batched-graph objective: trace once, replay per L-BFGS evaluation
    # ------------------------------------------------------------------
    def _restart_trace(
        self, example_shape: Tuple[int, ...], target_gradients: Sequence[np.ndarray]
    ) -> Tuple[BatchedGraph, int]:
        params = self.model.parameters()
        key = (
            tuple(example_shape),
            tuple(id(g) for g in target_gradients),
            tuple(id(p) for p in params),
        )
        if self._trace is not None and self._trace[0] == key:
            return self._trace[1], self._trace[2]

        dummy = Tensor(np.zeros((1,) + tuple(example_shape)), requires_grad=True)
        with tracing():
            logits = self.model(dummy)
            num_classes = logits.shape[-1]
            targets = Tensor(np.zeros((1, num_classes)))
            # single-example cross-entropy with the one-hot label as a
            # replayable leaf (sum == mean over a batch of one)
            loss = tsum(logsumexp(logits, axis=-1) - tsum(mul(logits, targets), axis=-1))
            dummy_gradients = grad(loss, params, create_graph=True)
            matching = build_matching_loss(
                self.config.objective,
                dummy_gradients,
                target_gradients,
                dummy,
                tv_weight=self.config.tv_weight,
            )
            (input_gradient,) = grad(matching, [dummy], create_graph=True)
        graph = BatchedGraph(
            [matching, input_gradient], {"dummy": dummy, "targets": targets}, params=params
        )
        self._trace = (key, graph, num_classes, list(target_gradients))
        return graph, num_classes

    def _objective_vectorized(
        self,
        flat: np.ndarray,
        batch_shape: Tuple[int, ...],
        labels: np.ndarray,
        target_gradients: Sequence[np.ndarray],
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        restarts = batch_shape[0]
        example_shape = tuple(batch_shape[1:])
        graph, num_classes = self._restart_trace(example_shape, target_gradients)
        onehot = np.zeros((restarts, num_classes), dtype=np.float64)
        onehot[np.arange(restarts), np.asarray(labels).reshape(-1)] = 1.0
        losses, input_gradient = graph.replay(
            {
                "dummy": np.asarray(flat, dtype=np.float64).reshape((restarts, 1) + example_shape),
                "targets": onehot[:, None],
            }
        )
        per_restart = np.asarray(losses, dtype=np.float64).reshape(restarts)
        return (
            float(per_restart.sum()),
            np.asarray(input_gradient, dtype=np.float64).reshape(-1),
            per_restart,
        )

    def _objective_looped(
        self,
        flat: np.ndarray,
        batch_shape: Tuple[int, ...],
        labels: np.ndarray,
        target_gradients: Sequence[np.ndarray],
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        restarts = batch_shape[0]
        example_shape = (1,) + tuple(batch_shape[1:])
        flats = flat.reshape(restarts, -1)
        per_restart = np.empty(restarts, dtype=np.float64)
        gradients = []
        for restart in range(restarts):
            value, gradient = self._single._gradient_matching_loss_and_grad(
                flats[restart], example_shape, labels[restart : restart + 1], target_gradients
            )
            per_restart[restart] = value
            gradients.append(gradient)
        return float(per_restart.sum()), np.concatenate(gradients), per_restart

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        target_gradients: Sequence[np.ndarray],
        example_shape: Tuple[int, ...],
        restart_seeds: Sequence[np.random.SeedSequence],
        ground_truth: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        global_weights: Optional[Sequence[np.ndarray]] = None,
    ) -> MultiRestartResult:
        """Run the batched multi-restart attack against one leaked gradient.

        ``restart_seeds`` supplies one independent ``SeedSequence`` per dummy
        restart (the in-loop scheduler keys them on
        ``(config seed, attack domain, round, client, restart)``), which is
        the only randomness the attack consumes.
        """
        config = self.config
        if not restart_seeds:
            raise ValueError("at least one restart seed is required")
        if labels is None:
            raise ValueError("the in-loop attack requires the target label")
        if global_weights is not None:
            self.model.set_weights(list(global_weights))

        num_params = len(self.model.parameters())
        if len(target_gradients) != num_params:
            raise ValueError(
                f"expected {num_params} target gradient blocks (one per model "
                f"parameter), got {len(target_gradients)}"
            )

        restarts = len(restart_seeds)
        example_shape = tuple(int(s) for s in example_shape)
        batch_shape = (restarts,) + example_shape
        labels = np.broadcast_to(np.asarray(labels, dtype=np.int64).reshape(-1), (restarts,))
        target_gradients = [np.asarray(g, dtype=np.float64) for g in target_gradients]

        dummies = np.stack(
            [
                make_seed(config.seed_kind, example_shape, rng=np.random.default_rng(seed))
                for seed in restart_seeds
            ]
        )
        low, high = config.value_range
        example_size = int(np.prod(example_shape))
        bounds = [(low, high)] * (restarts * example_size)

        vectorized = supports_vectorized_restarts(self.model, config) and not self.force_looped
        evaluate = self._objective_vectorized if vectorized else self._objective_looped

        if config.objective == "l2":
            target_squared_norm = float(sum(np.sum(np.square(g)) for g in target_gradients))
            effective_threshold = max(
                config.success_loss_threshold,
                config.success_relative_threshold * target_squared_norm,
            )
        else:
            effective_threshold = config.success_loss_threshold

        best_losses = np.full(restarts, np.inf)
        best_flats = dummies.reshape(restarts, -1).copy()
        last_losses = np.full(restarts, np.inf)
        state = {"iterations": 0}

        def objective(flat: np.ndarray) -> Tuple[float, np.ndarray]:
            total, gradient, per_restart = evaluate(
                flat, batch_shape, labels, target_gradients
            )
            last_losses[:] = per_restart
            improved = per_restart < best_losses
            if improved.any():
                best_losses[improved] = per_restart[improved]
                best_flats[improved] = flat.reshape(restarts, -1)[improved]
            return total, gradient

        def callback(flat: np.ndarray) -> None:
            state["iterations"] += 1
            if best_losses.min() < effective_threshold:
                raise StopIteration

        try:
            optimize.minimize(
                objective,
                dummies.reshape(-1),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                callback=callback,
                options={"maxiter": config.max_iterations, "ftol": 0.0, "gtol": 1e-12},
            )
        except StopIteration:
            pass

        finals = np.where(np.isfinite(best_losses), best_losses, last_losses)
        best_restart = int(np.argmin(finals))
        final_loss = float(finals[best_restart])
        iterations = state["iterations"] if state["iterations"] > 0 else config.max_iterations
        reconstruction = np.clip(best_flats[best_restart].reshape(example_shape), low, high)

        distance = float("nan")
        psnr_value = float("nan")
        if ground_truth is not None:
            truth = np.asarray(ground_truth, dtype=np.float64).reshape(example_shape)
            distance = reconstruction_distance(reconstruction, truth)
            psnr_value = compute_psnr(reconstruction, truth, data_range=high - low)

        return MultiRestartResult(
            succeeded=bool(final_loss < effective_threshold),
            num_iterations=int(min(iterations, config.max_iterations)),
            final_loss=final_loss,
            reconstruction_distance=distance,
            psnr=psnr_value,
            reconstruction=reconstruction,
            best_restart=best_restart,
            restarts=restarts,
            per_restart_losses=[float(v) for v in finals],
            vectorized=vectorized,
            labels_used=np.array(labels, copy=True),
        )
