"""Gradient-leakage (reconstruction) attacks and the type-0/1/2 threat harness."""

from .metrics import attack_success_rate, mean_attack_iterations, psnr, reconstruction_distance
from .objectives import (
    OBJECTIVE_KINDS,
    build_matching_loss,
    cosine_matching_loss,
    l2_matching_loss,
    total_variation,
)
from .reconstruction import (
    AttackConfig,
    AttackResult,
    GradientReconstructionAttack,
    infer_label_from_gradients,
)
from .seeds import SEED_KINDS, constant_seed, make_seed, patterned_random_seed, uniform_random_seed
from .threat import LEAKAGE_TYPES, GradientLeakageThreat, LeakageObservation

__all__ = [
    "AttackConfig",
    "AttackResult",
    "GradientReconstructionAttack",
    "infer_label_from_gradients",
    "GradientLeakageThreat",
    "LeakageObservation",
    "LEAKAGE_TYPES",
    "SEED_KINDS",
    "make_seed",
    "patterned_random_seed",
    "uniform_random_seed",
    "constant_seed",
    "reconstruction_distance",
    "psnr",
    "attack_success_rate",
    "mean_attack_iterations",
    "OBJECTIVE_KINDS",
    "build_matching_loss",
    "l2_matching_loss",
    "cosine_matching_loss",
    "total_variation",
]
