"""Gradient-leakage (reconstruction) attacks, the type-0/1/2 threat harness
and the in-loop attack scheduler used by the federated simulation."""

from .adaptive import (
    ADAPTIVE_ATTACK_DOMAIN,
    AdaptiveBudget,
    observed_update_norm,
    tune_attack_budget,
)
from .metrics import attack_success_rate, mean_attack_iterations, psnr, reconstruction_distance
from .multistart import (
    MultiRestartReconstruction,
    MultiRestartResult,
    supports_vectorized_restarts,
)
from .objectives import (
    OBJECTIVE_KINDS,
    build_matching_loss,
    cosine_matching_loss,
    l2_matching_loss,
    total_variation,
)
from .reconstruction import (
    AttackConfig,
    AttackResult,
    GradientReconstructionAttack,
    infer_label_from_gradients,
)
from .schedule import (
    ATTACK_DOMAIN,
    MEMBERSHIP_ATTACK_DOMAIN,
    AttackSchedule,
    resolve_attack_rounds,
)
from .seeds import SEED_KINDS, constant_seed, make_seed, patterned_random_seed, uniform_random_seed
from .threat import LEAKAGE_TYPES, GradientLeakageThreat, LeakageObservation

__all__ = [
    "AttackConfig",
    "AttackResult",
    "GradientReconstructionAttack",
    "MultiRestartReconstruction",
    "MultiRestartResult",
    "supports_vectorized_restarts",
    "AttackSchedule",
    "ATTACK_DOMAIN",
    "MEMBERSHIP_ATTACK_DOMAIN",
    "ADAPTIVE_ATTACK_DOMAIN",
    "AdaptiveBudget",
    "observed_update_norm",
    "tune_attack_budget",
    "resolve_attack_rounds",
    "infer_label_from_gradients",
    "GradientLeakageThreat",
    "LeakageObservation",
    "LEAKAGE_TYPES",
    "SEED_KINDS",
    "make_seed",
    "patterned_random_seed",
    "uniform_random_seed",
    "constant_seed",
    "reconstruction_distance",
    "psnr",
    "attack_success_rate",
    "mean_attack_iterations",
    "OBJECTIVE_KINDS",
    "build_matching_loss",
    "l2_matching_loss",
    "cosine_matching_loss",
    "total_variation",
]
