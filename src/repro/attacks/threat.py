"""Threat harness: type-0, type-1 and type-2 gradient leakage attacks.

Section III defines three leakage types by *where* and *on what* the adversary
reads gradients:

* **type-0** — the server (or an adversary at the server) intercepts the
  per-client shared update of a round;
* **type-1** — an adversary at the client reads the per-client update that
  resulted from the completed local training, before/as it is shared;
* **type-2** — an adversary at the client reads *per-example* gradients while
  local training is running.

For each defense method, the harness asks the local trainer what an adversary
at each of those observation points would actually see (exact gradients for
the non-private and DSSGD baselines, noisy per-client updates for Fed-SDP,
noisy per-example gradients for Fed-CDP/Fed-CDP(decay), and — for the
server-side Fed-SDP variant — exact updates at the client but noisy updates at
the server), and then launches the reconstruction attack of
:mod:`repro.attacks.reconstruction` against that observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import LocalTrainerBase
from repro.core.dssgd import DSSGDTrainer, select_top_fraction
from repro.core.fed_cdp import FedCDPTrainer
from repro.core.fed_sdp import FedSDPTrainer
from repro.federated.compression import prune_update

from .reconstruction import AttackConfig, AttackResult, GradientReconstructionAttack

__all__ = ["LEAKAGE_TYPES", "LeakageObservation", "GradientLeakageThreat"]


LEAKAGE_TYPES: Tuple[str, ...] = ("type0", "type1", "type2")


@dataclass
class LeakageObservation:
    """What the adversary intercepted, plus the private data it corresponds to."""

    leakage_type: str
    gradients: List[np.ndarray]
    ground_truth: np.ndarray
    labels: np.ndarray
    batch_size: int


class GradientLeakageThreat:
    """Builds adversarial observations for a defense and attacks them."""

    def __init__(
        self,
        trainer: LocalTrainerBase,
        attack_config: Optional[AttackConfig] = None,
        compression_ratio: float = 0.0,
    ) -> None:
        self.trainer = trainer
        self.attack_config = attack_config if attack_config is not None else AttackConfig()
        #: gradient pruning applied to shared updates (communication-efficient FL)
        self.compression_ratio = float(compression_ratio)

    # ------------------------------------------------------------------
    # Observation construction
    # ------------------------------------------------------------------
    def _batch_gradient_observed_in_transit(
        self,
        global_weights: Sequence[np.ndarray],
        features: np.ndarray,
        labels: np.ndarray,
        round_index: int,
        rng: np.random.Generator,
        at_server: bool,
    ) -> List[np.ndarray]:
        """Per-client shared gradient as seen at the client (type 1) or server (type 0).

        Following the paper's Figure 1 setup, the type-0/1 attack targets the
        gradient shared after a local step over a small batch, which for the
        purposes of the attack equals the batch-averaged gradient of the
        global model (sanitised according to the defense under test).
        """
        trainer = self.trainer
        trainer.model.set_weights(list(global_weights))

        if isinstance(trainer, FedCDPTrainer):
            # Fed-CDP (and decay): every per-example gradient is already noisy
            # before it is averaged, at the client and hence also at the server.
            # The whole batch goes through the vectorized stacked pipeline.
            stack, _ = trainer.compute_per_example_gradient_stack(features, labels)
            sanitized, _ = trainer.sanitize_per_example_stack(stack, round_index, rng)
            observed = [layer.mean(axis=0) for layer in sanitized]
        else:
            observed, _ = trainer.compute_batch_gradient(features, labels)
            if isinstance(trainer, FedSDPTrainer):
                if trainer.server_side and not at_server:
                    # noise is only added at the server; the client-side (type 1)
                    # adversary sees the exact update
                    pass
                else:
                    observed = trainer.sanitize_update(list(observed), round_index, rng)
            elif isinstance(trainer, DSSGDTrainer):
                observed = select_top_fraction(list(observed), trainer.share_fraction)

        if self.compression_ratio > 0.0:
            observed = prune_update(observed, self.compression_ratio)
        return [np.asarray(layer, dtype=np.float64) for layer in observed]

    def observe(
        self,
        leakage_type: str,
        global_weights: Sequence[np.ndarray],
        features: np.ndarray,
        labels: np.ndarray,
        round_index: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> LeakageObservation:
        """Construct the adversary's observation for the requested leakage type."""
        rng = rng if rng is not None else np.random.default_rng()
        leakage_type = leakage_type.lower()
        if leakage_type not in LEAKAGE_TYPES:
            raise ValueError(f"unknown leakage type {leakage_type!r}; expected one of {LEAKAGE_TYPES}")
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if features.shape[0] != labels.shape[0] or features.shape[0] == 0:
            raise ValueError("features and labels must be non-empty and aligned")

        if leakage_type == "type2":
            observed = self.trainer.observed_per_example_gradient(
                global_weights, features[:1], labels[:1], round_index=round_index, rng=rng
            )
            if self.compression_ratio > 0.0:
                observed = prune_update(observed, self.compression_ratio)
            return LeakageObservation(
                leakage_type=leakage_type,
                gradients=[np.asarray(g, dtype=np.float64) for g in observed],
                ground_truth=features[0],
                labels=labels[:1],
                batch_size=1,
            )

        at_server = leakage_type == "type0"
        observed = self._batch_gradient_observed_in_transit(
            global_weights, features, labels, round_index, rng, at_server=at_server
        )
        return LeakageObservation(
            leakage_type=leakage_type,
            gradients=observed,
            ground_truth=features,
            labels=labels,
            batch_size=features.shape[0],
        )

    # ------------------------------------------------------------------
    # Attack execution
    # ------------------------------------------------------------------
    def attack(
        self,
        leakage_type: str,
        global_weights: Sequence[np.ndarray],
        features: np.ndarray,
        labels: np.ndarray,
        round_index: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> AttackResult:
        """Observe the requested leakage surface and run the reconstruction attack."""
        rng = rng if rng is not None else np.random.default_rng()
        observation = self.observe(
            leakage_type, global_weights, features, labels, round_index=round_index, rng=rng
        )
        attack = GradientReconstructionAttack(self.trainer.model, self.attack_config)
        example_shape = observation.ground_truth.shape if observation.batch_size == 1 else observation.ground_truth.shape[1:]
        return attack.run(
            observation.gradients,
            example_shape,
            ground_truth=observation.ground_truth,
            labels=observation.labels,
            batch_size=observation.batch_size,
            global_weights=global_weights,
            rng=rng,
        )

    def attack_all_types(
        self,
        global_weights: Sequence[np.ndarray],
        features: np.ndarray,
        labels: np.ndarray,
        round_index: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, AttackResult]:
        """Run all three leakage attacks against the same private batch."""
        rng = rng if rng is not None else np.random.default_rng()
        return {
            leakage_type: self.attack(
                leakage_type, global_weights, features, labels, round_index=round_index, rng=rng
            )
            for leakage_type in LEAKAGE_TYPES
        }
