"""In-loop attack scheduling: a deterministic adversary inside the simulation.

The offline threat harness (:mod:`repro.attacks.threat`) attacks a model
snapshot in isolation; this module puts the adversary *inside*
:class:`~repro.federated.simulation.FederatedSimulation`.  An
:class:`AttackSchedule` — declared on the
:class:`~repro.federated.config.FederatedConfig` via the ``attack*`` fields —
designates the rounds and clients to strike, with three adversary kinds:

``leakage``
    The fixed-budget gradient-reconstruction attack: at each attacked round
    the adversary intercepts a participating client's round share and runs
    the batched multi-restart reconstruction of
    :mod:`repro.attacks.multistart` against it, producing one
    :class:`~repro.federated.server.AttackRecord` per attacked client.
``adaptive``
    The same reconstruction, but the restart/iteration budget is tuned per
    observation from the observed gradient norm
    (:mod:`repro.attacks.adaptive`): heavily sanitised observations earn a
    larger budget, crisp ones a smaller — the DLG-line's "evaluate against
    adaptive, not fixed, adversaries" requirement.
``membership``
    The loss-threshold membership inference audit
    (:mod:`repro.core.membership_inference`) of each attacked round's
    *released* global weights ``W(t+1)``: the attacked client's shard plays
    the members, a same-size held-out sample the non-members, and the
    per-client AUC/advantage land in
    :class:`~repro.federated.server.MIARecord` entries next to the
    reconstruction records.

Threat model
------------
Following the paper's Figure-1 setup (and the harness's type-0 observation),
the leaked quantity at round ``t`` is the client's *sanitised* gradient at
the broadcast global weights ``W(t)`` over one private probe example drawn
from its realised shard: exact for the non-private baseline, per-update
noised for Fed-SDP, per-example clipped-and-noised for Fed-CDP.  When the
config wires in secure aggregation, the server-side adversary only ever sees
the client's *masked* upload, so the observation carries the round's
pairwise mask as well.  Every adversary here is purely observational — it
never mutates server state, trainer state or the simulation's main RNG, so
an attacked run's training trajectory is bit-identical to the same run
without the adversary (regression-tested).

Determinism
-----------
Every draw an adversary consumes (probe-example choice, the observation's
sanitisation draws, each restart's dummy seed, the non-member sample) comes
from :func:`repro.federated.executor.domain_seed_sequence` under a
kind-dedicated domain tag — :data:`ATTACK_DOMAIN` for ``leakage``,
:data:`~repro.attacks.adaptive.ADAPTIVE_ATTACK_DOMAIN` for ``adaptive``,
:data:`MEMBERSHIP_ATTACK_DOMAIN` for ``membership`` — keyed on ``(config
seed, domain, round, client)`` plus the restart index for dummy seeds.  The
streams are therefore independent of the execution backend (serial ≡
multiprocessing bit-identically), of scheduling, and of how many rounds ran
before (exact checkpoint resume mid-schedule).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.membership_inference import loss_threshold_attack
from repro.federated.config import ATTACK_KINDS, FederatedConfig
from repro.federated.executor import domain_seed_sequence
from repro.federated.secure_aggregation import RoundSecureAggregator
from repro.federated.server import AttackRecord, MIARecord

from .adaptive import ADAPTIVE_ATTACK_DOMAIN, observed_update_norm, tune_attack_budget
from .multistart import MultiRestartReconstruction
from .reconstruction import AttackConfig
from .threat import GradientLeakageThreat

__all__ = [
    "ATTACK_DOMAIN",
    "MEMBERSHIP_ATTACK_DOMAIN",
    "AttackSchedule",
    "resolve_attack_rounds",
]


#: Domain-separation tag for the fixed-budget ``leakage`` adversary's RNG
#: streams (distinct from the client-training and availability domains — see
#: :mod:`repro.federated.executor`).  The ``adaptive`` and ``membership``
#: kinds use their own sibling tags, so no two adversary kinds ever consume
#: correlated randomness.
ATTACK_DOMAIN = 0x0A77AC4

#: Domain-separation tag for the in-loop membership inference audit (the
#: non-member sample draw).
MEMBERSHIP_ATTACK_DOMAIN = 0x0331A75


def _every_step(spec: str) -> int:
    """The stride of a normalised ``"every_k"`` spec (the single owner of
    that grammar on the consuming side; validation lives in
    :func:`repro.federated.config.normalize_attack_rounds`)."""
    return int(spec.split("_", 1)[1])


def resolve_attack_rounds(
    spec: Optional[object], total_rounds: int
) -> Tuple[int, ...]:
    """Concrete attacked round indices under a normalised ``attack_rounds`` spec.

    ``None`` attacks every round, ``"every_k"`` attacks rounds ``0, k, 2k,
    ...``, and an explicit tuple is clipped to the horizon.
    """
    if spec is None:
        return tuple(range(total_rounds))
    if isinstance(spec, str):
        return tuple(range(0, total_rounds, _every_step(spec)))
    return tuple(r for r in spec if r < total_rounds)


class AttackSchedule:
    """Runs the configured adversary at the designated rounds of a simulation."""

    def __init__(self, config: FederatedConfig) -> None:
        if config.attack not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack {config.attack!r}; expected one of {ATTACK_KINDS}"
            )
        self.config = config
        self.kind = config.attack
        self.rounds_spec = config.attack_rounds
        self.client_filter = (
            frozenset(config.attack_clients) if config.attack_clients is not None else None
        )
        self.restarts = int(config.attack_seeds)
        # images live in [0, 1]; the synthetic tabular features are Gaussian
        # cluster points, so the reconstruction box is widened accordingly
        value_range = (0.0, 1.0) if config.spec.is_image else (-6.0, 6.0)
        self.attack_config = AttackConfig(
            max_iterations=int(config.attack_iterations),
            value_range=value_range,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: FederatedConfig) -> Optional["AttackSchedule"]:
        """The schedule declared by ``config``, or ``None`` when attacks are off."""
        if config.attack is None:
            return None
        return cls(config)

    # ------------------------------------------------------------------
    def is_attack_round(self, round_index: int) -> bool:
        """Whether the adversary strikes at ``round_index``."""
        spec = self.rounds_spec
        if spec is None:
            return True
        if isinstance(spec, str):
            return round_index % _every_step(spec) == 0
        return round_index in spec

    def target_clients(self, participating: Sequence[int]) -> List[int]:
        """The participating clients the adversary attacks this round."""
        if self.client_filter is None:
            return [int(c) for c in participating]
        return [int(c) for c in participating if c in self.client_filter]

    # ------------------------------------------------------------------
    def run_round_attacks(
        self,
        trainer,
        clients: Sequence,
        broadcast_weights: Sequence[np.ndarray],
        participating: Sequence[int],
        round_index: int,
        released_weights: Optional[Sequence[np.ndarray]] = None,
        nonmember_dataset=None,
    ) -> Tuple[List[AttackRecord], List[MIARecord]]:
        """Attack every targeted participant of one round.

        ``broadcast_weights`` must be the global weights ``W(t)`` the round's
        cohort trained from (captured *before* aggregation);
        ``released_weights`` the post-aggregation ``W(t+1)`` the membership
        audit targets, with ``nonmember_dataset`` supplying its held-out
        non-members.  Returns ``(reconstruction records, membership
        records)`` — exactly one of the two is non-empty, in participation
        order.
        """
        attacks: List[AttackRecord] = []
        audits: List[MIARecord] = []
        if self.kind == "membership":
            if released_weights is None or nonmember_dataset is None:
                raise ValueError(
                    "the membership audit needs the released weights and a "
                    "non-member dataset"
                )
            for client_id in self.target_clients(participating):
                audits.append(
                    self._audit_client(
                        trainer, clients[client_id], released_weights, round_index,
                        nonmember_dataset,
                    )
                )
            return attacks, audits
        # under secure aggregation the server-side adversary observes the
        # masked upload: the round's pairwise mask rides on the observation
        masker = None
        if self.config.secure_aggregation:
            masker = RoundSecureAggregator(
                participating,
                self.config.seed,
                round_index,
                mask_scale=self.config.secure_mask_scale,
            )
        for client_id in self.target_clients(participating):
            attacks.append(
                self._attack_client(
                    trainer, clients[client_id], broadcast_weights, round_index, masker
                )
            )
        return attacks, audits

    def _attack_client(
        self,
        trainer,
        client,
        broadcast_weights: Sequence[np.ndarray],
        round_index: int,
        masker: Optional[RoundSecureAggregator] = None,
    ) -> AttackRecord:
        seed = self.config.seed
        client_id = client.client_id
        domain = ADAPTIVE_ATTACK_DOMAIN if self.kind == "adaptive" else ATTACK_DOMAIN
        # one stream per (round, client) for the probe choice and the
        # observation's sanitisation draws; one per restart for dummy seeds
        observation_rng = np.random.default_rng(
            domain_seed_sequence(seed, domain, round_index, client_id)
        )
        probe = int(observation_rng.integers(0, client.num_examples))
        features = client.dataset.features[probe : probe + 1]
        labels = client.dataset.labels[probe : probe + 1]

        threat = GradientLeakageThreat(
            trainer, self.attack_config, compression_ratio=self.config.compression_ratio
        )
        observation = threat.observe(
            "type0",
            broadcast_weights,
            features,
            labels,
            round_index=round_index,
            rng=observation_rng,
        )
        observed_gradients = observation.gradients
        if masker is not None:
            observed_gradients = masker.mask_update(int(client_id), observed_gradients)

        restarts = self.restarts
        attack_config = self.attack_config
        if self.kind == "adaptive":
            # tune the budget to the observation: the defender's announced
            # clipping bound is the adversary's reference for "unsanitised"
            budget = tune_attack_budget(
                observed_update_norm(observed_gradients),
                self.config.clipping_bound,
                base_restarts=self.restarts,
                base_iterations=int(self.config.attack_iterations),
            )
            restarts = budget.restarts
            attack_config = replace(self.attack_config, max_iterations=budget.iterations)

        restart_seeds = [
            domain_seed_sequence(seed, domain, round_index, client_id, restart)
            for restart in range(restarts)
        ]
        attack = MultiRestartReconstruction(trainer.model, attack_config)
        result = attack.run(
            observed_gradients,
            features.shape[1:],
            restart_seeds,
            ground_truth=features[0],
            labels=labels,
            global_weights=broadcast_weights,
        )
        return AttackRecord(
            client_id=int(client_id),
            mse=float(result.reconstruction_distance),
            psnr=float(result.psnr),
            success=bool(result.succeeded),
            iterations=int(result.num_iterations),
            final_loss=float(result.final_loss),
            best_restart=int(result.best_restart),
            restarts=int(result.restarts),
        )

    def _audit_client(
        self,
        trainer,
        client,
        released_weights: Sequence[np.ndarray],
        round_index: int,
        nonmember_dataset,
    ) -> MIARecord:
        """Membership-audit one client against the round's released model."""
        client_id = int(client.client_id)
        audit_rng = np.random.default_rng(
            domain_seed_sequence(
                self.config.seed, MEMBERSHIP_ATTACK_DOMAIN, round_index, client_id
            )
        )
        members = client.dataset
        count = min(len(members), len(nonmember_dataset))
        picks = np.sort(audit_rng.choice(len(nonmember_dataset), size=count, replace=False))
        # the audited model is the released aggregate; the trainer's model is
        # re-set from the authoritative weights before every other use, so
        # borrowing it here stays observational
        trainer.model.set_weights([np.array(w, copy=True) for w in released_weights])
        result = loss_threshold_attack(
            trainer.model,
            members.features,
            members.labels,
            nonmember_dataset.features[picks],
            nonmember_dataset.labels[picks],
        )
        return MIARecord(
            client_id=client_id,
            auc=float(result.auc),
            advantage=float(result.advantage),
            accuracy=float(result.accuracy),
            mean_member_loss=float(result.mean_member_loss),
            mean_nonmember_loss=float(result.mean_nonmember_loss),
            members=int(len(members)),
            nonmembers=int(count),
        )
