"""In-loop attack scheduling: a deterministic adversary inside the simulation.

The offline threat harness (:mod:`repro.attacks.threat`) attacks a model
snapshot in isolation; this module puts the adversary *inside*
:class:`~repro.federated.simulation.FederatedSimulation`.  An
:class:`AttackSchedule` — declared on the
:class:`~repro.federated.config.FederatedConfig` via the ``attack*`` fields —
designates the rounds and clients to strike.  At each attacked round the
adversary intercepts a participating client's round share and runs the
batched multi-restart reconstruction of :mod:`repro.attacks.multistart`
against it, producing one :class:`~repro.federated.server.AttackRecord` per
attacked client that rides on the round's ``RoundResult`` into the history,
the checkpoints and the golden-trajectory fixtures.

Threat model
------------
Following the paper's Figure-1 setup (and the harness's type-0 observation),
the leaked quantity at round ``t`` is the client's *sanitised* gradient at
the broadcast global weights ``W(t)`` over one private probe example drawn
from its realised shard: exact for the non-private baseline, per-update
noised for Fed-SDP, per-example clipped-and-noised for Fed-CDP.  The attack
is purely observational — it never mutates server state, trainer state or
the simulation's main RNG, so an attacked run's training trajectory is
bit-identical to the same run without the adversary (regression-tested).

Determinism
-----------
Every draw the adversary consumes (probe-example choice, the observation's
sanitisation noise, each restart's dummy seed) comes from
:func:`repro.federated.executor.domain_seed_sequence` under the dedicated
:data:`ATTACK_DOMAIN` tag, keyed on ``(config seed, domain, round, client)``
— plus the restart index for dummy seeds.  The streams are therefore
independent of the execution backend (serial ≡ multiprocessing bit-
identically), of scheduling, and of how many rounds ran before (exact
checkpoint resume mid-schedule).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.federated.config import ATTACK_KINDS, FederatedConfig
from repro.federated.executor import domain_seed_sequence
from repro.federated.server import AttackRecord

from .multistart import MultiRestartReconstruction
from .reconstruction import AttackConfig
from .threat import GradientLeakageThreat

__all__ = ["ATTACK_DOMAIN", "AttackSchedule", "resolve_attack_rounds"]


#: Domain-separation tag for all in-loop attack RNG streams (distinct from
#: the client-training and availability domains — see
#: :mod:`repro.federated.executor`).
ATTACK_DOMAIN = 0x0A77AC4


def _every_step(spec: str) -> int:
    """The stride of a normalised ``"every_k"`` spec (the single owner of
    that grammar on the consuming side; validation lives in
    :func:`repro.federated.config.normalize_attack_rounds`)."""
    return int(spec.split("_", 1)[1])


def resolve_attack_rounds(
    spec: Optional[object], total_rounds: int
) -> Tuple[int, ...]:
    """Concrete attacked round indices under a normalised ``attack_rounds`` spec.

    ``None`` attacks every round, ``"every_k"`` attacks rounds ``0, k, 2k,
    ...``, and an explicit tuple is clipped to the horizon.
    """
    if spec is None:
        return tuple(range(total_rounds))
    if isinstance(spec, str):
        return tuple(range(0, total_rounds, _every_step(spec)))
    return tuple(r for r in spec if r < total_rounds)


class AttackSchedule:
    """Runs the configured adversary at the designated rounds of a simulation."""

    def __init__(self, config: FederatedConfig) -> None:
        if config.attack not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack {config.attack!r}; expected one of {ATTACK_KINDS}"
            )
        self.config = config
        self.kind = config.attack
        self.rounds_spec = config.attack_rounds
        self.client_filter = (
            frozenset(config.attack_clients) if config.attack_clients is not None else None
        )
        self.restarts = int(config.attack_seeds)
        # images live in [0, 1]; the synthetic tabular features are Gaussian
        # cluster points, so the reconstruction box is widened accordingly
        value_range = (0.0, 1.0) if config.spec.is_image else (-6.0, 6.0)
        self.attack_config = AttackConfig(
            max_iterations=int(config.attack_iterations),
            value_range=value_range,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: FederatedConfig) -> Optional["AttackSchedule"]:
        """The schedule declared by ``config``, or ``None`` when attacks are off."""
        if config.attack is None:
            return None
        return cls(config)

    # ------------------------------------------------------------------
    def is_attack_round(self, round_index: int) -> bool:
        """Whether the adversary strikes at ``round_index``."""
        spec = self.rounds_spec
        if spec is None:
            return True
        if isinstance(spec, str):
            return round_index % _every_step(spec) == 0
        return round_index in spec

    def target_clients(self, participating: Sequence[int]) -> List[int]:
        """The participating clients the adversary attacks this round."""
        if self.client_filter is None:
            return [int(c) for c in participating]
        return [int(c) for c in participating if c in self.client_filter]

    # ------------------------------------------------------------------
    def run_round_attacks(
        self,
        trainer,
        clients: Sequence,
        broadcast_weights: Sequence[np.ndarray],
        participating: Sequence[int],
        round_index: int,
    ) -> List[AttackRecord]:
        """Attack every targeted participant of one round.

        ``broadcast_weights`` must be the global weights ``W(t)`` the round's
        cohort trained from (captured *before* aggregation).  Returns one
        record per attacked client, in participation order.
        """
        records: List[AttackRecord] = []
        for client_id in self.target_clients(participating):
            records.append(
                self._attack_client(
                    trainer, clients[client_id], broadcast_weights, round_index
                )
            )
        return records

    def _attack_client(
        self, trainer, client, broadcast_weights: Sequence[np.ndarray], round_index: int
    ) -> AttackRecord:
        seed = self.config.seed
        client_id = client.client_id
        # one stream per (round, client) for the probe choice and the
        # observation's sanitisation draws; one per restart for dummy seeds
        observation_rng = np.random.default_rng(
            domain_seed_sequence(seed, ATTACK_DOMAIN, round_index, client_id)
        )
        probe = int(observation_rng.integers(0, client.num_examples))
        features = client.dataset.features[probe : probe + 1]
        labels = client.dataset.labels[probe : probe + 1]

        threat = GradientLeakageThreat(
            trainer, self.attack_config, compression_ratio=self.config.compression_ratio
        )
        observation = threat.observe(
            "type0",
            broadcast_weights,
            features,
            labels,
            round_index=round_index,
            rng=observation_rng,
        )

        restart_seeds = [
            domain_seed_sequence(seed, ATTACK_DOMAIN, round_index, client_id, restart)
            for restart in range(self.restarts)
        ]
        attack = MultiRestartReconstruction(trainer.model, self.attack_config)
        result = attack.run(
            observation.gradients,
            features.shape[1:],
            restart_seeds,
            ground_truth=features[0],
            labels=labels,
            global_weights=broadcast_weights,
        )
        return AttackRecord(
            client_id=int(client_id),
            mse=float(result.reconstruction_distance),
            psnr=float(result.psnr),
            success=bool(result.succeeded),
            iterations=int(result.num_iterations),
            final_loss=float(result.final_loss),
            best_restart=int(result.best_restart),
            restarts=int(result.restarts),
        )
